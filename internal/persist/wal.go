package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"coresetclustering/internal/metric"
)

const (
	walMagic   = "KCWL"
	snapMagic  = "KCSN"
	walVersion = 1

	fileHeaderSize = 8  // magic + version + reserved, shared by wal and snap
	frameHeaderLen = 8  // frame length + CRC
	frameFixedLen  = 9  // seq + op, the part of the frame before the payload
	snapHeaderSize = 24 // file header + lastSeq + payload length + CRC

	// maxFrameLen bounds a single record so a hostile length prefix cannot
	// drive allocations; the daemon's request-body cap keeps real batches far
	// below it.
	maxFrameLen = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// fileHeader returns the 8-byte header shared by WAL and snapshot files.
func fileHeader(magic string) []byte {
	h := make([]byte, fileHeaderSize)
	copy(h, magic)
	binary.BigEndian.PutUint16(h[4:6], walVersion)
	return h
}

// checkFileHeader validates magic and version. A prefix shorter than the
// header is reported as torn (tornLen >= 0 tells the caller where the valid
// bytes end); a wrong magic or version is a hard error.
func checkFileHeader(data []byte, magic string) (tornLen int, err error) {
	if len(data) >= 4 && string(data[:4]) != magic {
		return -1, fmt.Errorf("%w: got %q, want %q", ErrBadMagic, data[:4], magic)
	}
	if len(data) < 6 {
		return 0, nil // torn header write: nothing trustworthy yet
	}
	if v := binary.BigEndian.Uint16(data[4:6]); v != walVersion {
		return -1, fmt.Errorf("%w: got version %d, support %d", ErrUnsupportedVersion, v, walVersion)
	}
	if len(data) < fileHeaderSize {
		return 0, nil
	}
	return fileHeaderSize, nil
}

// appendFrame appends one framed record (length, CRC, seq, op, payload) to
// dst and returns the extended slice.
func appendFrame(dst []byte, seq uint64, op Op, payload []byte) []byte {
	frameLen := frameFixedLen + len(payload)
	var hdr [frameHeaderLen + frameFixedLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(frameLen))
	binary.BigEndian.PutUint64(hdr[8:16], seq)
	hdr[16] = byte(op)
	crc := crc32.Update(0, crcTable, hdr[8:])
	crc = crc32.Update(crc, crcTable, payload)
	binary.BigEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// encodeCreate serializes a create payload.
func encodeCreate(m Meta) []byte {
	buf := make([]byte, 0, 30+len(m.Space))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.K))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Z))
	buf = binary.BigEndian.AppendUint32(buf, uint32(m.Budget))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.WindowSize))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.WindowDuration))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Space)))
	return append(buf, m.Space...)
}

func decodeCreate(payload []byte) (Meta, error) {
	var m Meta
	if len(payload) < 30 {
		return m, fmt.Errorf("create payload is %d bytes, want at least 30", len(payload))
	}
	k := binary.BigEndian.Uint32(payload[0:4])
	z := binary.BigEndian.Uint32(payload[4:8])
	budget := binary.BigEndian.Uint32(payload[8:12])
	if k > math.MaxInt32 || z > math.MaxInt32 || budget > math.MaxInt32 {
		return m, fmt.Errorf("parameter out of range (k=%d z=%d budget=%d)", k, z, budget)
	}
	m.K, m.Z, m.Budget = int(k), int(z), int(budget)
	m.WindowSize = int64(binary.BigEndian.Uint64(payload[12:20]))
	m.WindowDuration = int64(binary.BigEndian.Uint64(payload[20:28]))
	nameLen := int(binary.BigEndian.Uint16(payload[28:30]))
	if len(payload) != 30+nameLen {
		return m, fmt.Errorf("create payload is %d bytes, want %d", len(payload), 30+nameLen)
	}
	m.Space = string(payload[30:])
	if err := m.validate(); err != nil {
		return m, err
	}
	return m, nil
}

// encodeBatch serializes a batch payload. The caller has validated the batch
// (rectangular, finite, sorted non-negative timestamps), exactly as the
// daemon does before acknowledging it.
func encodeBatch(points metric.Dataset, ts []int64) ([]byte, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("empty batch")
	}
	dim := points.Dim()
	if dim == 0 {
		return nil, fmt.Errorf("zero-dimensional batch")
	}
	if ts != nil && len(ts) != len(points) {
		return nil, fmt.Errorf("%d timestamps for %d points", len(ts), len(points))
	}
	size := 9 + len(points)*dim*8
	if ts != nil {
		size += len(points) * 8
	}
	if size+frameFixedLen > maxFrameLen {
		return nil, fmt.Errorf("batch of %d points exceeds the record size bound", len(points))
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint32(buf, uint32(dim))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(points)))
	hasTS := byte(0)
	if ts != nil {
		hasTS = 1
	}
	buf = append(buf, hasTS)
	for _, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("ragged batch: point has %d coordinates, want %d", len(p), dim)
		}
		for _, c := range p {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c))
		}
	}
	for _, t := range ts {
		buf = binary.BigEndian.AppendUint64(buf, uint64(t))
	}
	return buf, nil
}

func decodeBatch(payload []byte) (metric.Dataset, []int64, error) {
	if len(payload) < 9 {
		return nil, nil, fmt.Errorf("batch payload is %d bytes, want at least 9", len(payload))
	}
	dim := binary.BigEndian.Uint32(payload[0:4])
	count := binary.BigEndian.Uint32(payload[4:8])
	hasTS := payload[8]
	if dim == 0 || count == 0 {
		return nil, nil, fmt.Errorf("batch with dim=%d count=%d", dim, count)
	}
	if hasTS > 1 {
		return nil, nil, fmt.Errorf("timestamp flag is %d", hasTS)
	}
	// Fix the payload length before allocating: a hostile header cannot make
	// the reader allocate beyond the input's own size.
	remaining := uint64(len(payload) - 9)
	perPoint := 8 * uint64(dim)
	if hasTS == 1 {
		perPoint += 8
	}
	if uint64(count) > remaining/perPoint {
		return nil, nil, fmt.Errorf("%d points of dimension %d need %d bytes, have %d", count, dim, uint64(count)*perPoint, remaining)
	}
	if need := uint64(count) * perPoint; need != remaining {
		return nil, nil, fmt.Errorf("%d trailing bytes after %d points", remaining-need, count)
	}
	points := make(metric.Dataset, count)
	off := 9
	for i := range points {
		p := make(metric.Point, dim)
		for j := range p {
			c := math.Float64frombits(binary.BigEndian.Uint64(payload[off : off+8]))
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, nil, fmt.Errorf("point %d coordinate %d is %v", i, j, c)
			}
			p[j] = c
			off += 8
		}
		points[i] = p
	}
	var ts []int64
	if hasTS == 1 {
		ts = make([]int64, count)
		for i := range ts {
			t := int64(binary.BigEndian.Uint64(payload[off : off+8]))
			off += 8
			if t < 0 {
				return nil, nil, fmt.Errorf("timestamp %d is negative (%d)", i, t)
			}
			if i > 0 && t < ts[i-1] {
				return nil, nil, fmt.Errorf("timestamp %d (%d) precedes timestamp %d (%d)", i, t, i-1, ts[i-1])
			}
			ts[i] = t
		}
	}
	return points, ts, nil
}

func encodeAdvance(ts int64) []byte {
	return binary.BigEndian.AppendUint64(nil, uint64(ts))
}

func decodeAdvance(payload []byte) (int64, error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("advance payload is %d bytes, want 8", len(payload))
	}
	ts := int64(binary.BigEndian.Uint64(payload))
	if ts < 0 {
		return 0, fmt.Errorf("advance to negative timestamp %d", ts)
	}
	return ts, nil
}

// decodeRecord parses one framed record starting at data[0]. It returns the
// record and the total frame size (header included), or an error describing
// the defect; any error means the byte stream is defective from here on.
func decodeRecord(data []byte, prevSeq uint64) (Record, int, error) {
	var rec Record
	if len(data) < frameHeaderLen {
		return rec, 0, fmt.Errorf("%w: %d trailing bytes, a frame header needs %d", ErrCorruptRecord, len(data), frameHeaderLen)
	}
	frameLen := binary.BigEndian.Uint32(data[0:4])
	if frameLen < frameFixedLen || frameLen > maxFrameLen {
		return rec, 0, fmt.Errorf("%w: frame length %d out of range", ErrCorruptRecord, frameLen)
	}
	if uint64(len(data)-frameHeaderLen) < uint64(frameLen) {
		return rec, 0, fmt.Errorf("%w: frame of %d bytes, %d available", ErrCorruptRecord, frameLen, len(data)-frameHeaderLen)
	}
	frame := data[frameHeaderLen : frameHeaderLen+int(frameLen)]
	if got, want := crc32.Checksum(frame, crcTable), binary.BigEndian.Uint32(data[4:8]); got != want {
		return rec, 0, fmt.Errorf("%w: CRC mismatch (got %08x, want %08x)", ErrCorruptRecord, got, want)
	}
	rec.Seq = binary.BigEndian.Uint64(frame[0:8])
	rec.Op = Op(frame[8])
	if !rec.Op.valid() {
		return rec, 0, fmt.Errorf("%w: unknown op %d", ErrCorruptRecord, frame[8])
	}
	if rec.Seq <= prevSeq {
		return rec, 0, fmt.Errorf("%w: sequence %d after %d", ErrCorruptRecord, rec.Seq, prevSeq)
	}
	payload := frame[frameFixedLen:]
	var err error
	switch rec.Op {
	case OpCreate:
		rec.Meta, err = decodeCreate(payload)
	case OpBatch:
		rec.Points, rec.Timestamps, err = decodeBatch(payload)
	case OpAdvance:
		rec.AdvanceTo, err = decodeAdvance(payload)
	}
	if err != nil {
		return rec, 0, fmt.Errorf("%w: %s record: %v", ErrCorruptRecord, rec.Op, err)
	}
	return rec, frameHeaderLen + int(frameLen), nil
}

// DecodeResult is what DecodeWAL recovered from a log image.
type DecodeResult struct {
	// Records is the valid prefix of the log, in append order.
	Records []Record
	// ValidLen is the length in bytes of the valid prefix (file header
	// included). Recovery truncates the file here before appending again.
	ValidLen int64
	// Torn is nil when the whole input decoded; otherwise it wraps
	// ErrCorruptRecord and describes the first defect. Everything from
	// ValidLen on is untrustworthy and must be discarded.
	Torn error
}

// DecodeWAL strictly decodes a WAL image, tolerating a torn tail: the valid
// record prefix is always returned, and the first defective record marks the
// truncation point instead of failing the decode. Only a header that proves
// the file is not ours (bad magic, unknown version) is a hard error. An empty
// input is a valid empty log. DecodeWAL never panics, and its allocations are
// bounded by the input size.
func DecodeWAL(data []byte) (*DecodeResult, error) {
	res := &DecodeResult{}
	if len(data) == 0 {
		return res, nil
	}
	hdrLen, err := checkFileHeader(data, walMagic)
	if err != nil {
		return nil, err
	}
	if hdrLen < fileHeaderSize {
		res.Torn = fmt.Errorf("%w: torn file header (%d bytes)", ErrCorruptRecord, len(data))
		return res, nil
	}
	if rsv := binary.BigEndian.Uint16(data[6:8]); rsv != 0 {
		return nil, fmt.Errorf("%w: reserved header bytes are %d", ErrUnsupportedVersion, rsv)
	}
	res.ValidLen = fileHeaderSize
	off := fileHeaderSize
	var prevSeq uint64
	for off < len(data) {
		rec, n, err := decodeRecord(data[off:], prevSeq)
		if err != nil {
			res.Torn = err
			return res, nil
		}
		res.Records = append(res.Records, rec)
		prevSeq = rec.Seq
		off += n
		res.ValidLen = int64(off)
	}
	return res, nil
}

// encodeSnapshot frames a sketch payload as a snapshot file image.
func encodeSnapshot(lastSeq uint64, payload []byte) []byte {
	buf := make([]byte, snapHeaderSize, snapHeaderSize+len(payload))
	copy(buf, fileHeader(snapMagic))
	binary.BigEndian.PutUint64(buf[8:16], lastSeq)
	binary.BigEndian.PutUint32(buf[16:20], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[20:24], crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// decodeSnapshot strictly decodes a snapshot file image. Unlike the WAL there
// is no tolerated tail: the snapshot was renamed into place atomically, so
// any defect means the file cannot be trusted at all.
func decodeSnapshot(data []byte) (lastSeq uint64, payload []byte, err error) {
	hdrLen, err := checkFileHeader(data, snapMagic)
	if err != nil {
		return 0, nil, err
	}
	if hdrLen < fileHeaderSize || len(data) < snapHeaderSize {
		return 0, nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrSnapshotCorrupt, len(data), snapHeaderSize)
	}
	if rsv := binary.BigEndian.Uint16(data[6:8]); rsv != 0 {
		return 0, nil, fmt.Errorf("%w: reserved header bytes are %d", ErrSnapshotCorrupt, rsv)
	}
	lastSeq = binary.BigEndian.Uint64(data[8:16])
	plen := binary.BigEndian.Uint32(data[16:20])
	if uint64(plen) != uint64(len(data)-snapHeaderSize) {
		return 0, nil, fmt.Errorf("%w: payload length %d, have %d bytes", ErrSnapshotCorrupt, plen, len(data)-snapHeaderSize)
	}
	payload = data[snapHeaderSize:]
	if got, want := crc32.Checksum(payload, crcTable), binary.BigEndian.Uint32(data[20:24]); got != want {
		return 0, nil, fmt.Errorf("%w: payload CRC mismatch (got %08x, want %08x)", ErrSnapshotCorrupt, got, want)
	}
	return lastSeq, payload, nil
}
