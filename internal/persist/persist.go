// Package persist is the per-stream durability engine of the daemon: a
// write-ahead log of ingest batches and clock advances, plus snapshot
// compaction built on the sketch codecs, giving kcenterd crash-safe streams.
//
// The design is the standard log+checkpoint recipe. Every mutation of a
// stream is first appended to its WAL as a length-prefixed, CRC-checked,
// sequence-numbered record; periodically the stream's complete state — which
// the sketch subsystem already serializes compactly (KCSK/KCWN) — is written
// as a snapshot and the log is reset. Recovery loads the newest valid
// snapshot and replays the log records with sequence numbers beyond it, in
// order, reproducing the pre-crash state exactly (the streams are
// deterministic, so a recovered stream's re-snapshot is byte-identical to an
// uninterrupted run's).
//
// On-disk layout, one directory per stream under the store root (directory
// names are the URL-safe base64 of the stream name):
//
//	<root>/<name>/wal       write-ahead log
//	<root>/<name>/snap      newest snapshot (atomically renamed into place)
//	<root>/<name>/*.tmp     in-flight writes (ignored and removed on open)
//	<root>/<name>.tomb      deleted stream mid-removal (removed on open)
//	<root>/<name>.failed    unrecoverable stream, set aside for forensics
//
// WAL wire format (all integers big-endian):
//
//	offset  size  field
//	0       4     magic "KCWL"
//	4       2     version (currently 1)
//	6       2     reserved (0)
//	8       ...   records, each:
//	                4  frame length n (covers seq+op+payload, so n >= 9)
//	                4  CRC-32C of the n frame bytes
//	                8  sequence number (strictly increasing within the file)
//	                1  op (1 = create, 2 = batch, 3 = advance)
//	                .. payload (see wal.go)
//
// Snapshot wire format:
//
//	offset  size  field
//	0       4     magic "KCSN"
//	4       2     version (currently 1)
//	6       2     reserved (0)
//	8       8     lastSeq: the WAL sequence number the snapshot includes
//	16      4     payload length
//	20      4     CRC-32C of the payload
//	24      ...   payload: a complete KCSK or KCWN sketch
//
// Decoding is strict — every field is validated, readers never panic (there
// is a fuzz target), and allocations are bounded by the input size — with one
// deliberate exception: a defect at a record boundary of the WAL (torn write,
// CRC mismatch, bad payload) is NOT an error. The reader returns the records
// of the valid prefix plus the prefix length, and recovery truncates the file
// there: a crash mid-append must never take down recovery of the records
// that were already durable. Defects that precede every record (bad magic,
// unknown version) are hard errors, because nothing after them can be
// trusted.
//
// Durability depends on the fsync mode: FsyncAlways syncs every append before
// it is acknowledged (an acknowledged write survives power loss);
// FsyncInterval syncs dirty logs on a background ticker (a crash loses at
// most the last interval); FsyncNever leaves syncing to the OS (a kill still
// loses nothing, power loss may lose or tear the tail — which recovery
// tolerates by truncating it). Snapshot compaction always uses
// write-to-temp + fsync + rename, so a valid snapshot is replaced atomically
// and records already folded into a snapshot are skipped on replay by
// sequence number even if the log reset behind it did not complete.
package persist

import (
	"context"
	"errors"
	"fmt"
	"time"

	"coresetclustering/internal/metric"
)

// Typed errors of the persistence layer. WAL and snapshot readers report
// malformed input exclusively through these (wrapped with detail), so callers
// can branch with errors.Is.
var (
	// ErrBadMagic: the file does not start with the expected magic — it is
	// not a WAL (or snapshot) at all. Hard error: nothing is recovered.
	ErrBadMagic = errors.New("persist: bad magic")
	// ErrUnsupportedVersion: the file was written by an incompatible version
	// of this package. Hard error.
	ErrUnsupportedVersion = errors.New("persist: unsupported version")
	// ErrCorruptRecord describes the first defective WAL record — the reason
	// the valid prefix ends where it does. It is reported as DecodeResult.Torn
	// (recovery truncates and continues), never as a decode failure.
	ErrCorruptRecord = errors.New("persist: corrupt record")
	// ErrSnapshotCorrupt: the snapshot file is structurally invalid
	// (truncated, CRC mismatch, trailing bytes).
	ErrSnapshotCorrupt = errors.New("persist: corrupt snapshot")
	// ErrLogRemoved: the stream's log was deleted; the handle is dead.
	ErrLogRemoved = errors.New("persist: log removed")
)

// FsyncMode selects when appends are flushed to stable storage.
type FsyncMode int

const (
	// FsyncAlways syncs after every append, before it is acknowledged.
	FsyncAlways FsyncMode = iota
	// FsyncInterval syncs dirty logs on a background ticker.
	FsyncInterval
	// FsyncNever never calls fsync; the OS flushes at its leisure.
	FsyncNever
)

// ParseFsyncMode parses the -fsync flag values "always", "interval", "never".
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("persist: unknown fsync mode %q (want always, interval or never)", s)
}

// String returns the flag spelling of the mode.
func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncMode(%d)", int(m))
}

// Op is the type tag of a WAL record.
type Op uint8

const (
	// OpCreate records the stream's creation parameters. It is the first
	// record of every WAL and is re-written on compaction so the metadata
	// survives log resets.
	OpCreate Op = 1
	// OpBatch records one acknowledged ingest batch (points, and for window
	// streams optionally one timestamp per point).
	OpBatch Op = 2
	// OpAdvance records a clock advance of a window stream.
	OpAdvance Op = 3
)

func (o Op) valid() bool { return o == OpCreate || o == OpBatch || o == OpAdvance }

// String returns a diagnostic name for the op.
func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpBatch:
		return "batch"
	case OpAdvance:
		return "advance"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Meta is the stream metadata journaled by the create record: everything the
// daemon needs to rebuild an empty stream, and what recovery verifies the
// snapshot against.
type Meta struct {
	// K and Z are the query parameters (centers, tolerated outliers).
	K, Z int
	// Budget is the coreset budget in points.
	Budget int
	// Space is the registered metric-space name.
	Space string
	// WindowSize and WindowDuration are the sliding-window bounds
	// (0 = none; both 0 means an insertion-only stream).
	WindowSize, WindowDuration int64
}

func (m *Meta) validate() error {
	if m.K < 1 {
		return fmt.Errorf("k must be positive, got %d", m.K)
	}
	if m.Z < 0 {
		return fmt.Errorf("negative z %d", m.Z)
	}
	if m.Budget < 1 {
		return fmt.Errorf("budget must be positive, got %d", m.Budget)
	}
	if m.Space == "" {
		return errors.New("empty space name")
	}
	if m.WindowSize < 0 || m.WindowDuration < 0 {
		return fmt.Errorf("negative window bound (size=%d duration=%d)", m.WindowSize, m.WindowDuration)
	}
	return nil
}

// Record is the decoded form of one WAL record.
type Record struct {
	// Seq is the record's sequence number, strictly increasing within a WAL.
	Seq uint64
	// Op discriminates the payload fields below.
	Op Op
	// Meta is the stream metadata (OpCreate only).
	Meta Meta
	// Points is the ingested batch (OpBatch only).
	Points metric.Dataset
	// Timestamps optionally carries one non-negative, non-decreasing int64
	// per point (OpBatch on window streams; nil when the batch was untimed).
	Timestamps []int64
	// AdvanceTo is the clock-advance target (OpAdvance only).
	AdvanceTo int64
}

// Hooks are optional instrumentation callbacks fired by the persistence
// layer, the seam the daemon's metrics subsystem plugs into. Nil fields cost
// one predictable branch on the paths they would instrument; non-nil fields
// additionally pay the clock reads that time the operation. Callbacks must be
// safe for concurrent use (appends, the background flusher, compactions and
// recovery may all fire them) and must return quickly: they run inside the
// log's critical section, so a slow callback stalls the ingest path it is
// meant to observe.
type Hooks struct {
	// AppendDone fires after each successful WAL append with the framed
	// record size in bytes and the total append latency (under FsyncAlways
	// this includes the fsync; FsyncDone then also fires separately).
	AppendDone func(op Op, bytes int, d time.Duration)
	// FsyncDone fires after each successful fsync of a log file — per append
	// under FsyncAlways, per dirty log per tick under FsyncInterval.
	FsyncDone func(d time.Duration)
	// FlushError fires when the background flusher's fsync fails (the log
	// stays dirty and is retried next tick; appends are NOT failed, so this
	// is the only signal).
	FlushError func(err error)
	// CompactionDone fires after a successful Compact/CompactAt with the
	// total compaction latency and the number of journaled records folded
	// into the snapshot (records carried over into the new WAL tail are not
	// counted).
	CompactionDone func(d time.Duration, foldedRecords int)
	// GroupCommitDone fires after each group-commit cycle with the number of
	// appends the covering fsync acknowledged together (the group depth) and
	// the latency of the cycle (fsync plus fan-out). Only fired when group
	// commit is active (Options.GroupCommit under FsyncAlways).
	GroupCommitDone func(groupSize int, d time.Duration)
	// AppendWait fires after a group-commit waiter is released via
	// (*Pending).WaitCtx, with the waiter's context and its enqueue→ack
	// latency (frame written to fsync acknowledged). Unlike the other
	// callbacks it runs on the waiter's own goroutine, outside any log
	// lock, and receives the caller's context so per-request tracing can
	// attribute the wait to the request that paid it. Never fired when
	// group commit is inactive or when Wait (context-free) is used.
	AppendWait func(ctx context.Context, op Op, wait time.Duration)
	// FlushCycleDone fires after each background flush tick that synced at
	// least one dirty log, with the tick's total latency and the number of
	// logs flushed. Only fired under FsyncInterval.
	FlushCycleDone func(d time.Duration, flushed int)
	// TornTail fires during recovery when a WAL ends in a defective record,
	// with the number of bytes truncated.
	TornTail func(truncatedBytes int64)
	// RecoveryDone fires after one stream's durable state has been decoded at
	// boot (snapshot + WAL scan; replay happens in the caller), with the
	// decode latency, the valid record count and the points awaiting replay.
	RecoveryDone func(name string, d time.Duration, records int, points int64)
}

// Options configures a Store.
type Options struct {
	// Fsync is the append flush policy (default FsyncAlways).
	Fsync FsyncMode
	// FsyncInterval is the flush period under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// CompactEvery is the number of appended records after which
	// (*Log).ShouldCompact reports true (default 1024; negative disables).
	CompactEvery int
	// GroupCommit coalesces concurrent appends into shared fsyncs under
	// FsyncAlways: each append writes its frame immediately (serialised per
	// log, so sequence order is untouched) and then waits for a committer
	// goroutine whose next fsync of that log covers every frame written
	// before it — one disk flush acknowledges the whole group. Durability
	// semantics are unchanged (an acknowledged append still survives power
	// loss); only the cost is amortised across in-flight appends. Ignored
	// under FsyncInterval/FsyncNever, which never fsync before
	// acknowledging.
	GroupCommit bool
	// Hooks are optional instrumentation callbacks (see Hooks).
	Hooks Hooks
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = 1024
	}
	return o
}

// LogStats describes the live WAL of one stream, for the daemon's stats
// endpoint.
type LogStats struct {
	// WALRecords and WALBytes measure the current log file (header included
	// in bytes; the re-written create record included in records).
	WALRecords int   `json:"walRecords"`
	WALBytes   int64 `json:"walBytes"`
	// Compactions counts snapshot compactions since the log was opened.
	Compactions int64 `json:"compactions"`
	// LastSeq is the sequence number of the newest record.
	LastSeq uint64 `json:"lastSeq"`
}

// RecoveryStats describes what boot-time recovery did for one stream.
type RecoveryStats struct {
	// SnapshotLoaded reports whether a valid snapshot was found;
	// SnapshotBytes and SnapshotSeq describe it.
	SnapshotLoaded bool   `json:"snapshotLoaded"`
	SnapshotBytes  int    `json:"snapshotBytes,omitempty"`
	SnapshotSeq    uint64 `json:"snapshotSeq,omitempty"`
	// WALRecords is the number of valid records found in the log;
	// RecordsReplayed (<= WALRecords) is how many were beyond the snapshot
	// and re-applied, covering PointsReplayed points.
	WALRecords      int   `json:"walRecords"`
	RecordsReplayed int   `json:"recordsReplayed"`
	PointsReplayed  int64 `json:"pointsReplayed"`
	// TornTail reports that the log ended in a defective record;
	// TruncatedBytes were discarded (the torn tail only — never a record
	// that was once acknowledged as fully written).
	TornTail       bool   `json:"tornTail"`
	TruncatedBytes int64  `json:"truncatedBytes,omitempty"`
	TornDetail     string `json:"tornDetail,omitempty"`
}
