package persist

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"coresetclustering/internal/metric"
)

// TestGroupCommitDurableAndOrdered hammers one log from many goroutines with
// group commit on, then recovers the directory cold and checks that every
// acknowledged batch is present exactly once and that sequence numbers are
// dense — grouping must not reorder, drop or double-write frames.
func TestGroupCommitDurableAndOrdered(t *testing.T) {
	dir := t.TempDir()
	var groups, grouped atomic.Int64
	s, err := Open(dir, Options{Fsync: FsyncAlways, GroupCommit: true, CompactEvery: -1, Hooks: Hooks{
		GroupCommitDone: func(n int, _ time.Duration) {
			groups.Add(1)
			grouped.Add(int64(n))
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.Create("s", testMeta())
	if err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Tag each batch in its first coordinate so recovery can
				// account for every ack.
				b := metric.Dataset{{float64(w*1000 + i), 1}}
				if err := l.AppendBatch(b, nil); err != nil {
					errs <- fmt.Errorf("writer %d batch %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := grouped.Load(); got != writers*perWriter {
		t.Fatalf("GroupCommitDone accounted %d appends, want %d", got, writers*perWriter)
	}
	t.Logf("%d appends in %d commit groups", grouped.Load(), groups.Load())

	s2, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Err != nil {
		t.Fatalf("recover: %+v", recs)
	}
	rec := recs[0]
	if rec.Stats.TornTail {
		t.Fatalf("torn tail after clean close: %s", rec.Stats.TornDetail)
	}
	seen := make(map[float64]bool)
	prevSeq := uint64(1) // the create record
	for _, r := range rec.Tail {
		if r.Seq != prevSeq+1 {
			t.Fatalf("sequence gap: %d after %d", r.Seq, prevSeq)
		}
		prevSeq = r.Seq
		if len(r.Points) != 1 {
			t.Fatalf("batch of %d points", len(r.Points))
		}
		tag := r.Points[0][0]
		if seen[tag] {
			t.Fatalf("batch %v recovered twice", tag)
		}
		seen[tag] = true
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("recovered %d acked batches, want %d", len(seen), writers*perWriter)
	}
}

// TestGroupCommitCoalesces proves grouping actually happens: with many
// concurrent waiters the committer must cover more than one append per fsync
// at least once (fsync count strictly below append count). Whether any two
// appends actually overlap in one cycle is a scheduling race — on a
// filesystem where fsync is nearly free (tmpfs CI runners) the committer can
// legitimately keep up 1:1 — so the race is retried a few times and the test
// only fails if coalescing NEVER happens.
func TestGroupCommitCoalesces(t *testing.T) {
	const attempts = 10
	for attempt := 1; attempt <= attempts; attempt++ {
		var fsyncs, appends atomic.Int64
		s, err := Open(t.TempDir(), Options{Fsync: FsyncAlways, GroupCommit: true, Hooks: Hooks{
			FsyncDone:  func(time.Duration) { fsyncs.Add(1) },
			AppendDone: func(Op, int, time.Duration) { appends.Add(1) },
		}})
		if err != nil {
			t.Fatal(err)
		}
		l, err := s.Create("s", testMeta())
		if err != nil {
			s.Close()
			t.Fatal(err)
		}
		// Begin every append before waiting on any: queue depth builds while
		// the committer fsyncs, which is the condition coalescing needs.
		const writers, perWriter = 16, 10
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				pendings := make([]*Pending, 0, perWriter)
				for i := 0; i < perWriter; i++ {
					p, err := l.BeginBatch(testBatch(1, 2, int64(w*100+i)), nil)
					if err != nil {
						t.Error(err)
						return
					}
					pendings = append(pendings, p)
				}
				for _, p := range pendings {
					if err := p.Wait(); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		s.Close()
		if t.Failed() {
			return
		}
		// Create's resetWAL syncs the file image too, but via swapWAL, not
		// FsyncDone — so FsyncDone counts exactly the commit-cycle fsyncs.
		if a, f := appends.Load(), fsyncs.Load(); f < a {
			t.Logf("attempt %d: %d appends covered by %d fsyncs", attempt, a, f)
			return
		}
	}
	t.Fatalf("no coalescing in %d attempts: every append got its own fsync", attempts)
}

// TestGroupCommitSequentialDepthOne pins the deterministic case the daemon's
// exact-series metrics test relies on: a lone synchronous caller always forms
// groups of exactly one.
func TestGroupCommitSequentialDepthOne(t *testing.T) {
	var bad atomic.Int64
	s, err := Open(t.TempDir(), Options{Fsync: FsyncAlways, GroupCommit: true, Hooks: Hooks{
		GroupCommitDone: func(n int, _ time.Duration) {
			if n != 1 {
				bad.Add(1)
			}
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l, err := s.Create("s", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.AppendBatch(testBatch(2, 2, int64(i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d groups with depth != 1 from a sequential writer", n)
	}
}

// TestGroupCommitIgnoredOutsideFsyncAlways: the option must be inert under
// interval/never modes — no committer, appends resolve synchronously.
func TestGroupCommitIgnoredOutsideFsyncAlways(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncInterval, FsyncNever} {
		s, err := Open(t.TempDir(), Options{Fsync: mode, GroupCommit: true, FsyncInterval: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		if s.commitQ != nil {
			t.Fatalf("mode %v: committer started despite non-always fsync", mode)
		}
		l, err := s.Create("s", testMeta())
		if err != nil {
			t.Fatal(err)
		}
		p, err := l.BeginBatch(testBatch(1, 2, 1), nil)
		if err != nil {
			t.Fatal(err)
		}
		if p.done != nil {
			t.Fatalf("mode %v: Pending not resolved synchronously", mode)
		}
		if err := p.Wait(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGroupCommitAfterCloseFallsBack: an append racing Close must either be
// resolved by the committer or take the inline-fsync fallback — never hang,
// never ack without durability. We call the fallback path directly since the
// race window is tiny.
func TestGroupCommitAfterCloseFallsBack(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Fsync: FsyncAlways, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.Create("s", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the committer already stopped while the log is still open.
	s.commitMu.Lock()
	s.commitStopped = true
	close(s.commitQ)
	s.commitMu.Unlock()
	<-s.commitDone

	if err := l.AppendBatch(testBatch(1, 2, 1), nil); err != nil {
		t.Fatalf("post-stop append did not fall back: %v", err)
	}
	if l.LastSeq() != 2 {
		t.Fatalf("seq %d, want 2", l.LastSeq())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitRemovedLogResolvesPending: Pendings for a log removed before
// its covering fsync resolve with ErrLogRemoved instead of hanging.
func TestGroupCommitRemovedLogResolvesPending(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Fsync: FsyncAlways, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l, err := s.Create("s", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	// Remove the log, then resolve a hand-built Pending through the group
	// path: commitSync must report ErrLogRemoved.
	if err := l.Remove(); err != nil {
		t.Fatal(err)
	}
	if err := l.commitSync(&s.opts.Hooks); !errors.Is(err, ErrLogRemoved) {
		t.Fatalf("commitSync on removed log: %v", err)
	}
	if _, err := l.BeginBatch(testBatch(1, 2, 1), nil); !errors.Is(err, ErrLogRemoved) {
		t.Fatalf("BeginBatch on removed log: %v", err)
	}
}

// TestGroupCommitCompactionConcurrent interleaves appends and CompactAt with
// group commit on: compaction swaps the WAL under the committer and nothing
// may be lost.
func TestGroupCommitCompactionConcurrent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Fsync: FsyncAlways, GroupCommit: true, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	l, err := s.Create("s", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 15
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := l.AppendBatch(metric.Dataset{{float64(w*1000 + i), 2}}, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Compact concurrently at whatever horizon is current; the sketch stands
	// in for the stream state at that sequence.
	for c := 0; c < 5; c++ {
		seq := l.LastSeq()
		if err := l.CompactAt(seq, []byte(fmt.Sprintf("sketch@%d", seq))); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold recovery: snapshot horizon + replay tail must still cover every
	// append exactly once in sequence order.
	s2, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Err != nil {
		t.Fatalf("recover: %+v", recs)
	}
	rec := recs[0]
	total := int(rec.Stats.SnapshotSeq) - 1 + len(rec.Tail) // records folded below the horizon + replayed tail
	if total != writers*perWriter {
		t.Fatalf("snapshot horizon %d + tail %d covers %d appends, want %d",
			rec.Stats.SnapshotSeq, len(rec.Tail), total, writers*perWriter)
	}
	prev := rec.Stats.SnapshotSeq
	for _, r := range rec.Tail {
		if r.Seq != prev+1 {
			t.Fatalf("tail sequence gap: %d after %d", r.Seq, prev)
		}
		prev = r.Seq
	}
}
