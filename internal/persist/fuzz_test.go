package persist

import (
	"bytes"
	"testing"

	"coresetclustering/internal/metric"
)

// FuzzWALDecode proves the properties recovery depends on: DecodeWAL never
// panics on arbitrary input, reports a valid prefix no longer than the input,
// and truncating at ValidLen yields an image that decodes cleanly (no torn
// tail) to the very same records — so "truncate at the first corrupt record"
// is a fixed point, never a second data loss.
func FuzzWALDecode(f *testing.F) {
	// Seed corpus: a real log (header + create + batches + advance), plus
	// assorted truncations and corruptions of it.
	img := fileHeader(walMagic)
	img = appendFrame(img, 1, OpCreate, encodeCreate(Meta{K: 2, Z: 1, Budget: 16, Space: "euclidean", WindowSize: 8}))
	payload, err := encodeBatch(metric.Dataset{{1, 2}, {3, 4}}, []int64{5, 6})
	if err != nil {
		f.Fatal(err)
	}
	img = appendFrame(img, 2, OpBatch, payload)
	img = appendFrame(img, 3, OpAdvance, encodeAdvance(9))
	f.Add(img)
	f.Add(img[:len(img)-3])
	f.Add(img[:fileHeaderSize])
	f.Add([]byte{})
	f.Add([]byte("KCWL"))
	corrupted := append([]byte(nil), img...)
	corrupted[len(corrupted)-2] ^= 0x40
	f.Add(corrupted)
	f.Add([]byte("KCSKnot-a-wal"))

	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeWAL(data)
		if err != nil {
			if res != nil {
				t.Fatalf("hard error %v with a non-nil result", err)
			}
			return
		}
		if res.ValidLen < 0 || res.ValidLen > int64(len(data)) {
			t.Fatalf("ValidLen %d outside [0, %d]", res.ValidLen, len(data))
		}
		if res.Torn == nil && res.ValidLen != int64(len(data)) && len(data) > 0 {
			t.Fatalf("clean decode but ValidLen %d != %d", res.ValidLen, len(data))
		}
		// Truncation is a fixed point.
		again, err := DecodeWAL(data[:res.ValidLen])
		if err != nil {
			t.Fatalf("re-decoding the valid prefix failed: %v", err)
		}
		if again.Torn != nil {
			t.Fatalf("valid prefix still torn: %v", again.Torn)
		}
		if len(again.Records) != len(res.Records) {
			t.Fatalf("valid prefix has %d records, first pass saw %d", len(again.Records), len(res.Records))
		}
		var prev uint64
		for i, r := range res.Records {
			if r.Seq <= prev {
				t.Fatalf("record %d sequence %d not increasing after %d", i, r.Seq, prev)
			}
			prev = r.Seq
			if !r.Op.valid() {
				t.Fatalf("record %d has invalid op %d", i, r.Op)
			}
		}
	})
}

// FuzzSnapshotDecode: the snapshot reader never panics and round-trips.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add(encodeSnapshot(7, []byte("sketch-bytes")))
	f.Add(encodeSnapshot(0, nil))
	f.Add([]byte("KCSN"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, payload, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeSnapshot(seq, payload), data) {
			t.Fatalf("snapshot did not round-trip")
		}
	})
}
