package persist

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestCompactAtPreservesTailAcrossRewrite is the core off-lock-compaction
// property: records appended AFTER the capture point (as happens when ingest
// keeps running while a background compaction serializes an older view) must
// survive the WAL rewrite verbatim and replay on top of the snapshot.
func TestCompactAtPreservesTailAcrossRewrite(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncAlways})
	l, err := s.Create("demo", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	// Two records up to the capture point, then two more "concurrent" ones.
	if err := l.AppendBatch(testBatch(4, 2, 1), nil); err != nil { // seq 2
		t.Fatal(err)
	}
	if err := l.AppendBatch(testBatch(3, 2, 2), nil); err != nil { // seq 3
		t.Fatal(err)
	}
	capture := l.LastSeq()
	if capture != 3 {
		t.Fatalf("capture seq = %d, want 3", capture)
	}
	if err := l.AppendBatch(testBatch(2, 2, 3), nil); err != nil { // seq 4
		t.Fatal(err)
	}
	if err := l.AppendAdvance(9); err != nil { // seq 5
		t.Fatal(err)
	}

	sketch := []byte("state-as-of-seq-3")
	if err := l.CompactAt(capture, sketch); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.WALRecords != 3 || st.Compactions != 1 || st.LastSeq != 5 {
		// create + the two post-capture records.
		t.Fatalf("stats after CompactAt = %+v", st)
	}
	// The handle keeps appending where it stopped.
	if err := l.AppendAdvance(10); err != nil { // seq 6
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(s.Dir(), Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Err != nil {
		t.Fatalf("recovery: %+v", recs)
	}
	r := recs[0]
	if string(r.Snapshot) != string(sketch) || r.Stats.SnapshotSeq != capture {
		t.Fatalf("snapshot = %q at seq %d, want %q at %d", r.Snapshot, r.Stats.SnapshotSeq, sketch, capture)
	}
	if !r.HaveMeta || r.Meta != testMeta() {
		t.Fatalf("metadata lost across CompactAt: haveMeta=%v meta=%+v", r.HaveMeta, r.Meta)
	}
	if len(r.Tail) != 3 {
		t.Fatalf("replay tail has %d records, want 3 (seqs 4, 5, 6)", len(r.Tail))
	}
	if r.Tail[0].Op != OpBatch || len(r.Tail[0].Points) != 2 || r.Tail[0].Seq != 4 {
		t.Fatalf("tail[0] = %+v", r.Tail[0])
	}
	if r.Tail[1].Op != OpAdvance || r.Tail[1].AdvanceTo != 9 || r.Tail[1].Seq != 5 {
		t.Fatalf("tail[1] = %+v", r.Tail[1])
	}
	if r.Tail[2].Op != OpAdvance || r.Tail[2].AdvanceTo != 10 || r.Tail[2].Seq != 6 {
		t.Fatalf("tail[2] = %+v", r.Tail[2])
	}
}

// TestCompactAtAtTipMatchesCompact checks the degenerate case — capture at
// the log tip — leaves an empty tail, exactly like Compact.
func TestCompactAtAtTipMatchesCompact(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncAlways})
	l, err := s.Create("demo", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(testBatch(5, 2, 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := l.CompactAt(l.LastSeq(), []byte("tip")); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.WALRecords != 1 || st.LastSeq != 2 {
		t.Fatalf("stats = %+v, want only the create record at seq 2", st)
	}
}

func TestCompactAtRejectsBadCapture(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncAlways})
	l, err := s.Create("demo", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(testBatch(1, 2, 1), nil); err != nil {
		t.Fatal(err)
	}
	if err := l.CompactAt(0, []byte("x")); err == nil {
		t.Fatal("capture 0 accepted")
	}
	if err := l.CompactAt(l.LastSeq()+1, []byte("x")); err == nil {
		t.Fatal("capture beyond the tip accepted")
	}
	// The snapshot horizon only moves forward: once seq 2 is folded in, a
	// stale capture at seq 1 must not regress it (records between the two
	// would be orphaned).
	if err := l.CompactAt(2, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(testBatch(1, 2, 2), nil); err != nil {
		t.Fatal(err)
	}
	if err := l.CompactAt(1, []byte("stale")); err == nil || !strings.Contains(err.Error(), "snapshot horizon") {
		t.Fatalf("stale capture: err = %v, want a snapshot-horizon rejection", err)
	}
}

// TestCompactAtConcurrentAppends interleaves a steady appender with repeated
// compactions at whatever the tip was a moment earlier (run under -race in
// CI). Afterwards every acknowledged record must be accounted for: at or
// below the final snapshot horizon, or alive in the replay tail.
func TestCompactAtConcurrentAppends(t *testing.T) {
	s := openStore(t, Options{Fsync: FsyncNever})
	l, err := s.Create("demo", testMeta())
	if err != nil {
		t.Fatal(err)
	}
	const appends = 300
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < appends; i++ {
			if err := l.AppendBatch(testBatch(1, 2, int64(i)), nil); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()
	var lastCapture uint64
	for i := 0; i < 20; i++ {
		capture := l.LastSeq()
		if capture <= lastCapture {
			continue
		}
		if err := l.CompactAt(capture, []byte(fmt.Sprintf("sketch-%d", capture))); err != nil {
			t.Fatalf("CompactAt(%d): %v", capture, err)
		}
		lastCapture = capture
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := l.LastSeq(); got != appends+1 {
		t.Fatalf("final seq = %d, want %d", got, appends+1)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(s.Dir(), Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Err != nil {
		t.Fatalf("recovery: %+v", recs)
	}
	r := recs[0]
	snapSeq := r.Stats.SnapshotSeq
	if snapSeq != lastCapture {
		t.Fatalf("snapshot seq = %d, want the last capture %d", snapSeq, lastCapture)
	}
	if want := fmt.Sprintf("sketch-%d", lastCapture); string(r.Snapshot) != want {
		t.Fatalf("snapshot payload = %q, want %q", r.Snapshot, want)
	}
	// The tail must be exactly the records beyond the snapshot, gapless.
	if got, want := len(r.Tail), int(uint64(appends+1)-snapSeq); got != want {
		t.Fatalf("tail has %d records, want %d (seqs %d..%d)", got, want, snapSeq+1, appends+1)
	}
	for i, rec := range r.Tail {
		if rec.Seq != snapSeq+1+uint64(i) {
			t.Fatalf("tail[%d].Seq = %d, want %d", i, rec.Seq, snapSeq+1+uint64(i))
		}
	}
}
