package persist

import (
	"encoding/base64"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"coresetclustering/internal/metric"
)

const (
	walFile  = "wal"
	snapFile = "snap"
	// tombSuffix marks a stream directory mid-deletion: the rename is the
	// atomic commit point of a delete, the RemoveAll behind it may be redone
	// on the next open. failedSuffix sets aside unrecoverable streams so the
	// name is freed without destroying evidence. Neither suffix can collide
	// with an encoded stream name (base64url never contains '.').
	tombSuffix   = ".tomb"
	failedSuffix = ".failed"
	tmpSuffix    = ".tmp"
)

// encodeName maps a stream name to its directory name (URL-safe base64, so
// arbitrary names — slashes, dots, control bytes — cannot escape the root).
func encodeName(name string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(name))
}

func decodeName(dir string) (string, error) {
	b, err := base64.RawURLEncoding.DecodeString(dir)
	if err != nil {
		return "", fmt.Errorf("persist: undecodable stream directory %q: %w", dir, err)
	}
	return string(b), nil
}

// Store manages the durability state of every stream under one root
// directory. Open it once at boot, Recover() the existing streams, then
// Create/Replace logs as streams come and go. All methods are safe for
// concurrent use; per-stream appends additionally serialise on the Log.
type Store struct {
	dir  string
	opts Options

	mu     sync.Mutex
	logs   map[string]*Log
	closed bool

	stopFlush chan struct{}
	flushDone chan struct{}

	// Group-commit committer state (see groupcommit.go). commitMu guards the
	// stopped flag against the queue close, so no append can race a send
	// onto a closed channel.
	commitMu      sync.Mutex
	commitQ       chan *Pending
	commitStopped bool
	commitDone    chan struct{}
}

// Open creates (if needed) the root directory, sweeps leftovers of
// interrupted deletes and writes (*.tomb, *.tmp), and starts the background
// flusher when opts.Fsync == FsyncInterval.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("persist: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), tombSuffix) || strings.HasSuffix(e.Name(), tmpSuffix) {
			if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
				return nil, fmt.Errorf("persist: sweeping %s: %w", e.Name(), err)
			}
			continue
		}
		if !e.IsDir() {
			continue
		}
		// Stale in-flight writes inside a stream directory (a crash between
		// atomicWrite's temp file and its rename).
		inner, err := os.ReadDir(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("persist: %w", err)
		}
		for _, f := range inner {
			if strings.HasSuffix(f.Name(), tmpSuffix) {
				if err := os.Remove(filepath.Join(dir, e.Name(), f.Name())); err != nil {
					return nil, fmt.Errorf("persist: sweeping %s/%s: %w", e.Name(), f.Name(), err)
				}
			}
		}
	}
	s := &Store{dir: dir, opts: opts.withDefaults(), logs: make(map[string]*Log)}
	if s.opts.Fsync == FsyncInterval {
		s.stopFlush = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flushLoop()
	}
	if s.groupActive() {
		s.commitQ = make(chan *Pending, 1024)
		s.commitDone = make(chan struct{})
		go s.commitLoop()
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// flushLoop syncs dirty logs every FsyncInterval until Close.
func (s *Store) flushLoop() {
	defer close(s.flushDone)
	t := time.NewTicker(s.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopFlush:
			return
		case <-t.C:
			s.mu.Lock()
			logs := make([]*Log, 0, len(s.logs))
			for _, l := range s.logs {
				logs = append(logs, l)
			}
			s.mu.Unlock()
			cycleHook := s.opts.Hooks.FlushCycleDone
			var start time.Time
			if cycleHook != nil {
				start = time.Now()
			}
			flushed := 0
			for _, l := range logs {
				if l.flush() {
					flushed++
				}
			}
			if cycleHook != nil && flushed > 0 {
				cycleHook(time.Since(start), flushed)
			}
		}
	}
}

// Close stops the flusher, syncs and closes every open log. The Store and
// its logs are unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	logs := make([]*Log, 0, len(s.logs))
	for _, l := range s.logs {
		logs = append(logs, l)
	}
	s.logs = make(map[string]*Log)
	s.mu.Unlock()
	if s.stopFlush != nil {
		close(s.stopFlush)
		<-s.flushDone
	}
	if s.commitQ != nil {
		// Stop order matters: flip the flag and close the queue under
		// commitMu (so a concurrent append either made it into the queue or
		// sees the flag and falls back to an inline fsync), then wait for
		// the committer to drain — every outstanding Pending resolves before
		// any log is closed underneath it.
		s.commitMu.Lock()
		if !s.commitStopped {
			s.commitStopped = true
			close(s.commitQ)
		}
		s.commitMu.Unlock()
		<-s.commitDone
	}
	var first error
	for _, l := range logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// register adds a log to the flusher set; it fails after Close.
func (s *Store) register(l *Log) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("persist: store is closed")
	}
	s.logs[l.name] = l
	return nil
}

func (s *Store) unregister(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.logs, name)
}

// Create starts a fresh log for a new stream: its directory, a WAL whose
// first record journals the stream metadata. The name must not already have
// a live directory (recover existing streams before creating new ones).
func (s *Store) Create(name string, meta Meta) (*Log, error) {
	if name == "" {
		return nil, errors.New("persist: empty stream name")
	}
	if err := meta.validate(); err != nil {
		return nil, fmt.Errorf("persist: %v", err)
	}
	dir := filepath.Join(s.dir, encodeName(name))
	if _, err := os.Stat(dir); err == nil {
		return nil, fmt.Errorf("persist: stream %q already has a directory (recover it instead)", name)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if err := os.Mkdir(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	l := &Log{store: s, name: name, dir: dir, meta: meta}
	if err := l.resetWAL(1); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	l.seq = 1
	l.publishStatsLocked()
	if err := s.register(l); err != nil {
		l.Close()
		os.RemoveAll(dir)
		return nil, err
	}
	return l, nil
}

// Replace installs a restored stream: directory (re)created, the given
// sketch written as the snapshot, and a fresh WAL journaling the new
// metadata. Any previous log handle for the name must be removed or closed
// first (the daemon marks the replaced stream gone before calling this).
func (s *Store) Replace(name string, meta Meta, snapshot []byte) (*Log, error) {
	if name == "" {
		return nil, errors.New("persist: empty stream name")
	}
	if err := meta.validate(); err != nil {
		return nil, fmt.Errorf("persist: %v", err)
	}
	dir := filepath.Join(s.dir, encodeName(name))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	l := &Log{store: s, name: name, dir: dir, meta: meta}
	l.seq = 1
	if err := l.writeSnapshotLocked(1, snapshot); err != nil {
		return nil, err
	}
	if err := l.resetWAL(1); err != nil {
		return nil, err
	}
	if err := s.register(l); err != nil {
		l.Close()
		return nil, err
	}
	return l, nil
}

// Log is the durability handle of one stream. Appends are serialised by the
// caller (the daemon holds the stream mutex) but the Log still locks
// internally so the background flusher and compaction never race an append.
type Log struct {
	store *Store
	name  string
	dir   string
	meta  Meta

	mu sync.Mutex
	// syncMu pins l.f across a group-commit fsync that runs WITHOUT l.mu
	// (so writers keep appending frames while the disk flushes; frames
	// written mid-fsync are covered by the next cycle). Every site that
	// closes or replaces l.f takes syncMu around doing so; lock order is
	// always l.mu → syncMu.
	syncMu      sync.Mutex
	f           *os.File
	size        int64 // current wal file size
	seq         uint64
	snapSeq     uint64 // newest sequence folded into the snapshot file (0 = none)
	records     int    // records in the current wal (create record included)
	since       int    // records appended since the last compaction
	compactions int64
	dirty       bool
	removed     bool
	failed      error // first append failure; poisons the log (torn tail risk)

	// statsCache is the lock-free snapshot behind Stats(): refreshed after
	// every counter change, read without l.mu so the daemon's wait-free query
	// handlers never stall behind an in-flight append fsync or compaction.
	statsCache atomic.Pointer[LogStats]
}

// Name returns the stream name the log belongs to.
func (l *Log) Name() string { return l.name }

// Meta returns the stream metadata journaled in the create record.
func (l *Log) Meta() Meta { return l.meta }

// resetWAL atomically replaces the WAL with a fresh one holding only the
// header and a create record carrying seq (the metadata must survive log
// resets; replay skips it by sequence number when a snapshot covers it).
// When the metadata is not known yet (snapshot-only recovery, before
// AdoptMeta) the create record is omitted rather than journaled invalid.
// Callers hold l.mu or have exclusive access.
func (l *Log) resetWAL(seq uint64) error {
	img := fileHeader(walMagic)
	records := 0
	if l.meta.validate() == nil {
		img = appendFrame(img, seq, OpCreate, encodeCreate(l.meta))
		records = 1
	}
	return l.swapWAL(img, records, 0)
}

// swapWAL atomically replaces the WAL file with the given image (a complete
// file: header plus records) and adopts its descriptor and counters. Callers
// hold l.mu or have exclusive access.
func (l *Log) swapWAL(img []byte, records, since int) error {
	// Write the replacement under a temp name and keep ITS file descriptor:
	// the fd follows the inode through the rename, so there is no window in
	// which l.f could point at an unlinked file. Any failure before the
	// rename leaves the old WAL (and l.f) fully intact and consistent.
	path := filepath.Join(l.dir, walFile)
	tmp := path + tmpSuffix
	sync := l.store.opts.Fsync != FsyncNever
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := f.Write(img); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("persist: %w", err)
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if sync {
		// A dir-sync failure after the rename is tolerable: a crash may then
		// resurrect the OLD log, whose records the snapshot's sequence
		// number already covers, so replay skips them.
		if d, err := os.Open(l.dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	l.syncMu.Lock()
	if l.f != nil {
		l.f.Close()
	}
	l.f = f
	l.syncMu.Unlock()
	l.size = int64(len(img))
	l.records = records
	l.since = since
	l.failed = nil
	l.publishStatsLocked()
	return nil
}

// begin frames and writes one record and starts its durability. On a
// non-group-commit store it applies the fsync policy inline and returns an
// already-resolved Pending (Wait is free). Under group commit the record's
// write and sequence assignment still happen here, serialised on l.mu, but
// the fsync is delegated to the store's committer: the returned Pending
// resolves after the next fsync of this log, which covers the frame.
func (l *Log) begin(op Op, payload []byte) (*Pending, error) {
	l.mu.Lock()
	if l.removed {
		l.mu.Unlock()
		return nil, ErrLogRemoved
	}
	if l.failed != nil {
		l.mu.Unlock()
		return nil, fmt.Errorf("persist: log is poisoned by an earlier write failure: %w", l.failed)
	}
	if frameFixedLen+len(payload) > maxFrameLen {
		l.mu.Unlock()
		return nil, fmt.Errorf("persist: record of %d bytes exceeds the size bound", len(payload))
	}
	hooks := &l.store.opts.Hooks
	group := l.store.groupActive()
	var start time.Time
	if group || hooks.AppendDone != nil || hooks.FsyncDone != nil {
		start = time.Now()
	}
	seq := l.seq + 1
	frame := appendFrame(nil, seq, op, payload)
	n, err := l.f.Write(frame)
	if err != nil {
		// A partial frame is a torn tail: recovery truncates it, but further
		// appends to this handle would land behind garbage, so refuse them.
		if n > 0 {
			l.failed = err
		}
		l.mu.Unlock()
		return nil, fmt.Errorf("persist: %w", err)
	}
	if group {
		// The frame is fully written and the sequence number consumed, so
		// the counters advance now; durability (and the ack) comes from the
		// committer's next fsync of this log. A fsync failure there poisons
		// the log just like the inline path below.
		l.seq = seq
		l.size += int64(len(frame))
		l.records++
		l.since++
		l.publishStatsLocked()
		l.mu.Unlock()
		p := &Pending{l: l, seq: seq, op: op, bytes: len(frame), start: start, done: make(chan struct{})}
		l.store.enqueueCommit(p)
		return p, nil
	}
	if l.store.opts.Fsync == FsyncAlways {
		var syncStart time.Time
		if hooks.FsyncDone != nil {
			syncStart = time.Now()
		}
		if err := l.f.Sync(); err != nil {
			// The frame IS fully written: if appends continued, the next one
			// would reuse this sequence number and recovery would truncate
			// everything from here on as a torn tail. Poison instead — the
			// stream keeps answering reads, writes fail loudly until the
			// next compaction or restart rebuilds the log.
			l.failed = fmt.Errorf("fsync failed after a durable frame: %w", err)
			l.mu.Unlock()
			return nil, fmt.Errorf("persist: %w", err)
		}
		if hooks.FsyncDone != nil {
			hooks.FsyncDone(time.Since(syncStart))
		}
	} else {
		l.dirty = true
	}
	if hooks.AppendDone != nil {
		hooks.AppendDone(op, len(frame), time.Since(start))
	}
	l.seq = seq
	l.size += int64(len(frame))
	l.records++
	l.since++
	l.publishStatsLocked()
	l.mu.Unlock()
	return &Pending{l: l, seq: seq, op: op}, nil
}

// append frames and writes one record and waits for durability. It returns
// the record's sequence number.
func (l *Log) append(op Op, payload []byte) (uint64, error) {
	p, err := l.begin(op, payload)
	if err != nil {
		return 0, err
	}
	if err := p.Wait(); err != nil {
		return 0, err
	}
	return p.seq, nil
}

// BeginBatch journals one validated ingest batch (ts may be nil for untimed
// batches) and returns a Pending the caller Waits on for durability. Under
// group commit this lets the caller overlap its own work (applying the batch
// to in-memory state) with the covering fsync; elsewhere the Pending is
// already resolved. The record is sequenced when BeginBatch returns, so
// per-stream WAL order always matches apply order when callers hold the
// stream mutex across BeginBatch, as the daemon does.
func (l *Log) BeginBatch(points metric.Dataset, ts []int64) (*Pending, error) {
	payload, err := encodeBatch(points, ts)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return l.begin(OpBatch, payload)
}

// BeginAdvance journals a clock advance of a window stream and returns a
// Pending the caller Waits on for durability (see BeginBatch).
func (l *Log) BeginAdvance(ts int64) (*Pending, error) {
	if ts < 0 {
		return nil, fmt.Errorf("persist: advance to negative timestamp %d", ts)
	}
	return l.begin(OpAdvance, encodeAdvance(ts))
}

// AppendBatch journals one validated ingest batch (ts may be nil for untimed
// batches). The append is durable per the store's fsync mode when it returns.
func (l *Log) AppendBatch(points metric.Dataset, ts []int64) error {
	p, err := l.BeginBatch(points, ts)
	if err != nil {
		return err
	}
	return p.Wait()
}

// AppendAdvance journals a clock advance of a window stream.
func (l *Log) AppendAdvance(ts int64) error {
	p, err := l.BeginAdvance(ts)
	if err != nil {
		return err
	}
	return p.Wait()
}

// flush syncs buffered appends (FsyncInterval mode) and reports whether a
// sync actually happened, so the flusher can attribute tick latency to the
// logs it flushed.
func (l *Log) flush() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dirty && !l.removed && l.f != nil {
		hooks := &l.store.opts.Hooks
		var start time.Time
		if hooks.FsyncDone != nil {
			start = time.Now()
		}
		if err := l.f.Sync(); err == nil {
			l.dirty = false
			if hooks.FsyncDone != nil {
				hooks.FsyncDone(time.Since(start))
			}
			return true
		} else if hooks.FlushError != nil {
			// The log stays dirty and is retried next tick; appends keep
			// succeeding meanwhile, so this callback is the only signal.
			hooks.FlushError(err)
		}
	}
	return false
}

// ShouldCompact reports whether enough records accumulated since the last
// compaction to be worth folding into a snapshot.
func (l *Log) ShouldCompact() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.store.opts.CompactEvery > 0 && l.since >= l.store.opts.CompactEvery && l.failed == nil && !l.removed
}

// writeSnapshotLocked writes the snapshot file atomically: temp file, fsync,
// rename, directory fsync. lastSeq is the newest WAL sequence number the
// snapshot's state includes; replay skips records at or below it.
func (l *Log) writeSnapshotLocked(lastSeq uint64, sketch []byte) error {
	if err := atomicWrite(filepath.Join(l.dir, snapFile), encodeSnapshot(lastSeq, sketch), l.store.opts.Fsync != FsyncNever); err != nil {
		return err
	}
	l.snapSeq = lastSeq
	return nil
}

// Compact folds the log into a snapshot: the sketch (the stream's complete
// serialized state, captured by the caller under the stream mutex) replaces
// every journaled record, and the WAL is reset. Crash-safe at every point:
// the snapshot rename is atomic, and until the WAL reset lands the old
// records are skipped on replay by sequence number.
func (l *Log) Compact(sketch []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.removed {
		return ErrLogRemoved
	}
	hooks := &l.store.opts.Hooks
	var start time.Time
	if hooks.CompactionDone != nil {
		start = time.Now()
	}
	folded := l.records
	if folded > 0 && l.meta.validate() == nil {
		folded-- // the re-written create record is metadata, not folded data
	}
	if err := l.writeSnapshotLocked(l.seq, sketch); err != nil {
		return err
	}
	if err := l.resetWAL(l.seq); err != nil {
		return err
	}
	l.compactions++
	l.dirty = false
	l.publishStatsLocked()
	if hooks.CompactionDone != nil {
		hooks.CompactionDone(time.Since(start), folded)
	}
	return nil
}

// CompactAt folds the log into a snapshot captured at captureSeq — a sequence
// number that may be OLDER than the log's current tip. Unlike Compact, which
// assumes the caller blocked appends while capturing the sketch, CompactAt is
// built for compaction off the ingest path: appends may land between the
// capture and this call, and every record with a sequence number beyond
// captureSeq is carried over verbatim into the rewritten WAL, so no
// acknowledged write is lost. Crash-safe at every point, like Compact.
func (l *Log) CompactAt(captureSeq uint64, sketch []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.removed {
		return ErrLogRemoved
	}
	if captureSeq < 1 || captureSeq > l.seq {
		return fmt.Errorf("persist: compaction capture sequence %d outside the log's range [1, %d]", captureSeq, l.seq)
	}
	if captureSeq < l.snapSeq {
		// The snapshot horizon only moves forward: replacing a newer snapshot
		// with this stale capture would orphan the records between the two
		// (folded into the newer snapshot, no longer in the WAL).
		return fmt.Errorf("persist: compaction capture sequence %d is behind the snapshot horizon %d", captureSeq, l.snapSeq)
	}
	hooks := &l.store.opts.Hooks
	var start time.Time
	if hooks.CompactionDone != nil {
		start = time.Now()
	}
	if err := l.writeSnapshotLocked(captureSeq, sketch); err != nil {
		return err
	}
	// Find the WAL tail beyond the capture point. The file on disk is exactly
	// what this handle wrote (appends are serialised on l.mu), so a strict
	// re-read is cheap insurance, not a recovery pass: any defect means the
	// handle and the disk disagree, and compaction must not guess.
	img, err := os.ReadFile(filepath.Join(l.dir, walFile))
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if len(img) < fileHeaderSize {
		return fmt.Errorf("persist: WAL lost its header mid-compaction (%d bytes)", len(img))
	}
	tailStart := -1
	tailRecords := 0
	folded := 0
	var prevSeq uint64
	for off := fileHeaderSize; off < len(img); {
		rec, n, derr := decodeRecord(img[off:], prevSeq)
		if derr != nil {
			return fmt.Errorf("persist: WAL defective under a live handle: %w", derr)
		}
		if tailStart < 0 && rec.Op != OpCreate && rec.Seq > captureSeq {
			tailStart = off
		}
		if tailStart >= 0 {
			tailRecords++
		} else if rec.Op != OpCreate {
			folded++
		}
		prevSeq = rec.Seq
		off += n
	}
	newImg := fileHeader(walMagic)
	records := 0
	if l.meta.validate() == nil {
		newImg = appendFrame(newImg, captureSeq, OpCreate, encodeCreate(l.meta))
		records = 1
	}
	if tailStart >= 0 {
		newImg = append(newImg, img[tailStart:]...)
	}
	if err := l.swapWAL(newImg, records+tailRecords, tailRecords); err != nil {
		return err
	}
	// swapWAL synced the full replacement image (tail included) in every
	// durable fsync mode, so nothing buffered remains.
	l.compactions++
	l.dirty = false
	l.publishStatsLocked()
	if hooks.CompactionDone != nil {
		hooks.CompactionDone(time.Since(start), folded)
	}
	return nil
}

// publishStatsLocked refreshes the lock-free stats snapshot. Callers hold
// l.mu or have exclusive access.
func (l *Log) publishStatsLocked() {
	l.statsCache.Store(&LogStats{
		WALRecords:  l.records,
		WALBytes:    l.size,
		Compactions: l.compactions,
		LastSeq:     l.seq,
	})
}

// Stats describes the live log for the daemon's stats endpoint. It reads the
// published snapshot without taking the log mutex, so a stats query never
// stalls behind an in-flight append fsync or compaction.
func (l *Log) Stats() LogStats {
	if s := l.statsCache.Load(); s != nil {
		return *s
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.publishStatsLocked()
	return *l.statsCache.Load()
}

// LastSeq returns the newest appended sequence number, lock-free.
func (l *Log) LastSeq() uint64 { return l.Stats().LastSeq }

// Remove deletes the stream's durable state: the directory is first renamed
// to a tombstone (the atomic commit point — a crash leaves either a live
// stream or a tombstone the next Open sweeps) and then removed. The handle
// is dead afterwards.
func (l *Log) Remove() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.removed {
		return nil
	}
	l.removed = true
	if l.f != nil {
		l.syncMu.Lock()
		l.f.Close()
		l.f = nil
		l.syncMu.Unlock()
	}
	l.store.unregister(l.name)
	tomb := l.dir + tombSuffix
	os.RemoveAll(tomb) // leftovers of a previous interrupted delete
	if err := os.Rename(l.dir, tomb); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.RemoveAll(tomb); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// SetAside closes the log and renames the stream directory to the ".failed"
// suffix: the name is freed, the bytes are kept for forensics. The daemon
// uses it when recovery fails above the persistence layer (metadata
// mismatch, replay failure). The handle is dead afterwards.
func (l *Log) SetAside() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.removed {
		return nil
	}
	l.removed = true
	if l.f != nil {
		l.syncMu.Lock()
		l.f.Close()
		l.f = nil
		l.syncMu.Unlock()
	}
	l.store.unregister(l.name)
	failed := l.dir + failedSuffix
	os.RemoveAll(failed)
	if err := os.Rename(l.dir, failed); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// Close syncs and closes the log file without touching the durable state.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.store.unregister(l.name)
	if l.f == nil {
		return nil
	}
	var err error
	if l.dirty && l.store.opts.Fsync != FsyncNever {
		err = l.f.Sync()
	}
	l.syncMu.Lock()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	l.syncMu.Unlock()
	return err
}

// Recovered is the durable state of one stream as found at boot.
type Recovered struct {
	// Name is the stream name (decoded from the directory).
	Name string
	// Meta is the journaled stream metadata; HaveMeta reports whether a
	// create record survived (it can be absent only if the WAL was lost
	// while a snapshot survived — the snapshot then carries the parameters).
	Meta     Meta
	HaveMeta bool
	// Snapshot is the newest valid snapshot's sketch payload (nil if none).
	Snapshot []byte
	// Tail is the records to replay on top of the snapshot, in order:
	// every batch/advance with a sequence number beyond the snapshot's.
	Tail []Record
	// Stats summarises what recovery found, for the stats endpoint.
	Stats RecoveryStats
	// Log is the live handle, positioned to append; nil when Err is set.
	Log *Log
	// Err is set when the stream could not be recovered (its directory has
	// been set aside with the ".failed" suffix, freeing the name).
	Err error
}

// Recover scans the store root and rebuilds the durable state of every
// stream: newest valid snapshot, valid WAL prefix (torn tails truncated in
// place), replay tail beyond the snapshot. Streams that cannot be recovered
// are reported with Err and their directories set aside as "<dir>.failed".
// Call once, before creating any new log.
func (s *Store) Recover() ([]*Recovered, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var out []*Recovered
	for _, e := range entries {
		if !e.IsDir() || strings.HasSuffix(e.Name(), failedSuffix) {
			continue
		}
		rec := s.recoverDir(e.Name())
		if rec.Err != nil {
			// Free the name but keep the bytes for forensics.
			failed := filepath.Join(s.dir, e.Name()) + failedSuffix
			os.RemoveAll(failed)
			os.Rename(filepath.Join(s.dir, e.Name()), failed)
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// recoverDir rebuilds one stream directory.
func (s *Store) recoverDir(entry string) *Recovered {
	hooks := &s.opts.Hooks
	var start time.Time
	if hooks.RecoveryDone != nil {
		start = time.Now()
	}
	rec := &Recovered{Name: entry}
	name, err := decodeName(entry)
	if err != nil {
		rec.Err = err
		return rec
	}
	rec.Name = name
	dir := filepath.Join(s.dir, entry)

	// Newest valid snapshot first: it fixes the replay horizon.
	var snapSeq uint64
	if img, err := os.ReadFile(filepath.Join(dir, snapFile)); err == nil {
		seq, payload, derr := decodeSnapshot(img)
		if derr != nil {
			rec.Err = fmt.Errorf("persist: stream %q: %w", name, derr)
			return rec
		}
		snapSeq = seq
		rec.Snapshot = append([]byte(nil), payload...)
		rec.Stats.SnapshotLoaded = true
		rec.Stats.SnapshotBytes = len(payload)
		rec.Stats.SnapshotSeq = seq
	} else if !os.IsNotExist(err) {
		rec.Err = fmt.Errorf("persist: stream %q: %w", name, err)
		return rec
	}

	walPath := filepath.Join(dir, walFile)
	img, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		rec.Err = fmt.Errorf("persist: stream %q: %w", name, err)
		return rec
	}
	res, err := DecodeWAL(img)
	if err != nil {
		rec.Err = fmt.Errorf("persist: stream %q: %w", name, err)
		return rec
	}
	if res.Torn != nil {
		rec.Stats.TornTail = true
		rec.Stats.TruncatedBytes = int64(len(img)) - res.ValidLen
		rec.Stats.TornDetail = res.Torn.Error()
		if hooks.TornTail != nil {
			hooks.TornTail(rec.Stats.TruncatedBytes)
		}
	}
	rec.Stats.WALRecords = len(res.Records)

	lastSeq := snapSeq
	for _, r := range res.Records {
		if r.Seq > lastSeq {
			lastSeq = r.Seq
		}
		if r.Op == OpCreate {
			rec.Meta = r.Meta
			rec.HaveMeta = true
			continue
		}
		if r.Seq <= snapSeq {
			continue // already folded into the snapshot
		}
		rec.Tail = append(rec.Tail, r)
		rec.Stats.PointsReplayed += int64(len(r.Points))
	}
	rec.Stats.RecordsReplayed = len(rec.Tail)
	if !rec.HaveMeta && rec.Snapshot == nil {
		rec.Err = fmt.Errorf("persist: stream %q: no snapshot and no create record — nothing to recover", name)
		return rec
	}

	// Materialise a consistent on-disk log before handing out the handle:
	// truncate the torn tail, or rebuild the file entirely when even the
	// header is missing.
	l := &Log{store: s, name: name, dir: dir, meta: rec.Meta, seq: lastSeq, snapSeq: snapSeq}
	if res.ValidLen < fileHeaderSize {
		// Even the header was lost (or never synced). Rebuild the file; when
		// the metadata only lives in the snapshot, the daemon re-derives it
		// from the sketch and calls AdoptMeta.
		if err := l.recreateWAL(); err != nil {
			rec.Err = err
			return rec
		}
	} else {
		if res.ValidLen < int64(len(img)) {
			if err := os.Truncate(walPath, res.ValidLen); err != nil {
				rec.Err = fmt.Errorf("persist: stream %q: %w", name, err)
				return rec
			}
		}
		f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			rec.Err = fmt.Errorf("persist: stream %q: %w", name, err)
			return rec
		}
		l.f = f
		l.size = res.ValidLen
		l.records = len(res.Records)
		l.since = len(rec.Tail)
		l.publishStatsLocked()
	}
	if err := s.register(l); err != nil {
		l.Close()
		rec.Err = err
		return rec
	}
	rec.Log = l
	if hooks.RecoveryDone != nil {
		hooks.RecoveryDone(name, time.Since(start), rec.Stats.WALRecords, rec.Stats.PointsReplayed)
	}
	return rec
}

// recreateWAL rebuilds a missing or headerless WAL in place (fresh header +
// create record at the current sequence number). Used by recovery; callers
// have exclusive access.
func (l *Log) recreateWAL() error {
	seq := l.seq
	if seq == 0 {
		seq = 1
		l.seq = 1
	}
	return l.resetWAL(seq)
}

// AdoptMeta fills in the metadata of a log recovered without a create record
// (snapshot-only recovery) and journals it so the next boot has it again.
func (l *Log) AdoptMeta(meta Meta) error {
	if err := meta.validate(); err != nil {
		return fmt.Errorf("persist: %v", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.removed {
		return ErrLogRemoved
	}
	l.meta = meta
	return l.resetWAL(l.seq)
}

// atomicWrite writes data to path via a temp file and rename, syncing the
// file and its directory when sync is true.
func atomicWrite(path string, data []byte, sync bool) error {
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("persist: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if sync {
		if d, err := os.Open(filepath.Dir(path)); err == nil {
			d.Sync()
			d.Close()
		}
	}
	return nil
}
