package persist

import (
	"context"
	"fmt"
	"time"
)

// maxCommitGroup bounds how many queued appends one committer cycle drains.
// The bound exists only to keep a single cycle's ack fan-out finite under a
// firehose; 4096 is far beyond any realistic in-flight count.
const maxCommitGroup = 4096

// Pending is an append whose frame is written (and sequenced) but whose
// covering fsync may not have happened yet. Wait blocks until the append is
// durable per the store's fsync policy and returns the append's final error.
// A Pending from a non-group-commit store is already resolved when returned,
// so Wait is free.
type Pending struct {
	l     *Log
	seq   uint64
	op    Op
	bytes int
	start time.Time

	// done is nil when the Pending was resolved synchronously; otherwise it
	// is closed by the committer after err is set (close is the
	// happens-before edge that publishes err).
	done chan struct{}
	err  error
}

// Seq returns the record's sequence number, assigned at write time — valid
// immediately, even before Wait returns.
func (p *Pending) Seq() uint64 { return p.seq }

// Wait blocks until the append's covering fsync completes (or fails) and
// returns the append's final error. It is safe to call multiple times.
func (p *Pending) Wait() error {
	if p.done != nil {
		<-p.done
	}
	return p.err
}

// WaitCtx is Wait plus latency attribution: after the append is durable it
// fires the store's AppendWait hook (when set) with ctx and the waiter's
// enqueue→ack time, so a traced request can record how long it sat in the
// group-commit queue. The wait itself is not cancellable — durability was
// already promised when the frame was written — so ctx is carried, not
// watched. Resolved-synchronously Pendings (non-group stores) fire nothing.
func (p *Pending) WaitCtx(ctx context.Context) error {
	if p.done == nil {
		return p.err
	}
	<-p.done
	if hook := p.l.store.opts.Hooks.AppendWait; hook != nil && !p.start.IsZero() {
		hook(ctx, p.op, time.Since(p.start))
	}
	return p.err
}

func (p *Pending) resolve(err error) {
	p.err = err
	close(p.done)
}

// groupActive reports whether appends go through the committer goroutine.
func (s *Store) groupActive() bool {
	return s.opts.Fsync == FsyncAlways && s.opts.GroupCommit
}

// enqueueCommit hands a written-but-unsynced append to the committer. After
// Close has stopped the committer, late appends fall back to an inline fsync
// so no Pending is ever left unresolved.
func (s *Store) enqueueCommit(p *Pending) {
	s.commitMu.Lock()
	if s.commitStopped {
		s.commitMu.Unlock()
		p.resolve(p.l.syncInline())
		return
	}
	// A full queue blocks here while holding commitMu; the committer is
	// still draining (it only exits once the channel is closed, which
	// requires commitMu), so the send always completes.
	s.commitQ <- p
	s.commitMu.Unlock()
}

// commitLoop is the committer goroutine: it drains the queue into groups and
// resolves each group with one fsync per distinct log.
func (s *Store) commitLoop() {
	defer close(s.commitDone)
	group := make([]*Pending, 0, 64)
	for {
		p, ok := <-s.commitQ
		if !ok {
			return
		}
		group = append(group[:0], p)
		// Everything already queued behind p joins this cycle's fsync; the
		// non-blocking drain is what turns concurrent callers into a group.
	drain:
		for len(group) < maxCommitGroup {
			select {
			case q, more := <-s.commitQ:
				if !more {
					break drain
				}
				group = append(group, q)
			default:
				break drain
			}
		}
		s.commitGroup(group)
	}
}

// commitGroup fsyncs each distinct log once and fans the result back out to
// every member of the group, preserving per-log enqueue order.
func (s *Store) commitGroup(group []*Pending) {
	hooks := &s.opts.Hooks
	var start time.Time
	if hooks.GroupCommitDone != nil {
		start = time.Now()
	}
	// Fast path: groups almost always cover a single log (one hot stream),
	// and then the grouping is allocation-free.
	single := true
	for _, p := range group[1:] {
		if p.l != group[0].l {
			single = false
			break
		}
	}
	if single {
		err := group[0].l.commitSync(hooks)
		for _, p := range group {
			s.finish(p, err, hooks)
		}
	} else {
		byLog := make(map[*Log][]*Pending, 4)
		order := make([]*Log, 0, 4)
		for _, p := range group {
			if _, ok := byLog[p.l]; !ok {
				order = append(order, p.l)
			}
			byLog[p.l] = append(byLog[p.l], p)
		}
		for _, l := range order {
			err := l.commitSync(hooks)
			for _, p := range byLog[l] {
				s.finish(p, err, hooks)
			}
		}
	}
	if hooks.GroupCommitDone != nil {
		hooks.GroupCommitDone(len(group), time.Since(start))
	}
}

// finish resolves one group member and fires its AppendDone hook (latency
// measured begin-to-durable, queue wait included).
func (s *Store) finish(p *Pending, err error, hooks *Hooks) {
	if err == nil && hooks.AppendDone != nil {
		hooks.AppendDone(p.op, p.bytes, time.Since(p.start))
	}
	p.resolve(err)
}

// commitSync fsyncs the log once on behalf of a commit group. The fsync runs
// WITHOUT l.mu — that is the heart of group commit: while the disk flushes,
// the next wave of appenders writes its frames, so the following cycle
// covers a whole group instead of one. syncMu (acquired under l.mu, so the
// lock order is fixed) pins the file descriptor: compaction's WAL swap and
// Remove/Close block on it rather than closing the fd mid-fsync. Frames
// written to the fd after the fsync starts may or may not hit the disk with
// it — harmless, their own covering fsync comes next cycle; a frame carried
// into a swapped WAL is durable via the swap's full-image sync before the
// rename. A fsync failure poisons the log exactly like an inline fsync
// failure would: the frames ARE fully written, so continuing to append would
// make recovery truncate them as a torn tail.
func (l *Log) commitSync(hooks *Hooks) error {
	l.mu.Lock()
	if l.removed || l.f == nil {
		l.mu.Unlock()
		return ErrLogRemoved
	}
	if l.failed != nil {
		err := fmt.Errorf("persist: log is poisoned by an earlier write failure: %w", l.failed)
		l.mu.Unlock()
		return err
	}
	f := l.f
	l.syncMu.Lock()
	l.mu.Unlock()
	var syncStart time.Time
	if hooks.FsyncDone != nil {
		syncStart = time.Now()
	}
	err := f.Sync()
	l.syncMu.Unlock()
	if err != nil {
		l.mu.Lock()
		l.failed = fmt.Errorf("fsync failed after a durable frame: %w", err)
		l.mu.Unlock()
		return fmt.Errorf("persist: %w", err)
	}
	if hooks.FsyncDone != nil {
		hooks.FsyncDone(time.Since(syncStart))
	}
	return nil
}

// syncInline is the post-shutdown fallback: the committer is gone, so the
// appender fsyncs its own frame.
func (l *Log) syncInline() error {
	return l.commitSync(&l.store.opts.Hooks)
}
