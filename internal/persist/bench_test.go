package persist

import (
	"fmt"
	"testing"
)

// BenchmarkPersistAppend measures WAL append throughput (64-point batches of
// dimension 8) under each fsync mode. FsyncAlways is bound by the device;
// interval/never measure the codec + write path itself.
func BenchmarkPersistAppend(b *testing.B) {
	batch := testBatch(64, 8, 1)
	for _, mode := range []FsyncMode{FsyncNever, FsyncInterval, FsyncAlways} {
		b.Run(mode.String(), func(b *testing.B) {
			s, err := Open(b.TempDir(), Options{Fsync: mode, CompactEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			l, err := s.Create("bench", Meta{K: 4, Budget: 32, Space: "euclidean"})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(64 * 8 * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.AppendBatch(batch, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPersistRecovery measures boot-time recovery (decode + truncate +
// reopen) as a function of log length: replay cost must stay linear and
// cheap, because it bounds daemon restart latency.
func BenchmarkPersistRecovery(b *testing.B) {
	for _, records := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			s, err := Open(b.TempDir(), Options{Fsync: FsyncNever, CompactEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			l, err := s.Create("bench", Meta{K: 4, Budget: 32, Space: "euclidean"})
			if err != nil {
				b.Fatal(err)
			}
			batch := testBatch(16, 8, 1)
			for i := 0; i < records; i++ {
				if err := l.AppendBatch(batch, nil); err != nil {
					b.Fatal(err)
				}
			}
			dir := s.Dir()
			s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s2, err := Open(dir, Options{Fsync: FsyncNever})
				if err != nil {
					b.Fatal(err)
				}
				recs, err := s2.Recover()
				if err != nil {
					b.Fatal(err)
				}
				if len(recs) != 1 || recs[0].Err != nil || len(recs[0].Tail) != records {
					b.Fatalf("recovered %d streams, tail %d", len(recs), len(recs[0].Tail))
				}
				s2.Close()
			}
		})
	}
}

// BenchmarkPersistCompact measures snapshot compaction latency (snapshot
// write + atomic rename + log reset) for a representative sketch size.
func BenchmarkPersistCompact(b *testing.B) {
	s, err := Open(b.TempDir(), Options{Fsync: FsyncNever, CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	l, err := s.Create("bench", Meta{K: 4, Budget: 32, Space: "euclidean"})
	if err != nil {
		b.Fatal(err)
	}
	sketch := make([]byte, 64<<10)
	for i := range sketch {
		sketch[i] = byte(i)
	}
	batch := testBatch(16, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.AppendBatch(batch, nil); err != nil {
			b.Fatal(err)
		}
		if err := l.Compact(sketch); err != nil {
			b.Fatal(err)
		}
	}
}
