package persist

import (
	"fmt"
	"testing"
)

// BenchmarkPersistAppend measures WAL append throughput (64-point batches of
// dimension 8) under each fsync mode. FsyncAlways is bound by the device;
// interval/never measure the codec + write path itself.
func BenchmarkPersistAppend(b *testing.B) {
	batch := testBatch(64, 8, 1)
	for _, mode := range []FsyncMode{FsyncNever, FsyncInterval, FsyncAlways} {
		b.Run(mode.String(), func(b *testing.B) {
			s, err := Open(b.TempDir(), Options{Fsync: mode, CompactEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			l, err := s.Create("bench", Meta{K: 4, Budget: 32, Space: "euclidean"})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(64 * 8 * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.AppendBatch(batch, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIngestWALAppend measures concurrent append throughput with and
// without group commit under each fsync mode — the CI ingest gate compares
// fsync=always/group=on against fsync=always/group=off, where coalescing
// concurrent callers into shared fsyncs is the whole win. 64 concurrent
// appenders (per GOMAXPROCS) model a loaded daemon's parallel ingest
// handlers; without group commit they serialise one fsync each.
func BenchmarkIngestWALAppend(b *testing.B) {
	batch := testBatch(16, 8, 1)
	for _, mode := range []FsyncMode{FsyncNever, FsyncInterval, FsyncAlways} {
		for _, group := range []bool{false, true} {
			b.Run(fmt.Sprintf("fsync=%s/group=%v", mode, group), func(b *testing.B) {
				s, err := Open(b.TempDir(), Options{Fsync: mode, GroupCommit: group, CompactEvery: -1})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				l, err := s.Create("bench", Meta{K: 4, Budget: 32, Space: "euclidean"})
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(16 * 8 * 8))
				b.SetParallelism(64)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if err := l.AppendBatch(batch, nil); err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	}
}

// BenchmarkPersistRecovery measures boot-time recovery (decode + truncate +
// reopen) as a function of log length: replay cost must stay linear and
// cheap, because it bounds daemon restart latency.
func BenchmarkPersistRecovery(b *testing.B) {
	for _, records := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			s, err := Open(b.TempDir(), Options{Fsync: FsyncNever, CompactEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			l, err := s.Create("bench", Meta{K: 4, Budget: 32, Space: "euclidean"})
			if err != nil {
				b.Fatal(err)
			}
			batch := testBatch(16, 8, 1)
			for i := 0; i < records; i++ {
				if err := l.AppendBatch(batch, nil); err != nil {
					b.Fatal(err)
				}
			}
			dir := s.Dir()
			s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s2, err := Open(dir, Options{Fsync: FsyncNever})
				if err != nil {
					b.Fatal(err)
				}
				recs, err := s2.Recover()
				if err != nil {
					b.Fatal(err)
				}
				if len(recs) != 1 || recs[0].Err != nil || len(recs[0].Tail) != records {
					b.Fatalf("recovered %d streams, tail %d", len(recs), len(recs[0].Tail))
				}
				s2.Close()
			}
		})
	}
}

// BenchmarkPersistCompact measures snapshot compaction latency (snapshot
// write + atomic rename + log reset) for a representative sketch size.
func BenchmarkPersistCompact(b *testing.B) {
	s, err := Open(b.TempDir(), Options{Fsync: FsyncNever, CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	l, err := s.Create("bench", Meta{K: 4, Budget: 32, Space: "euclidean"})
	if err != nil {
		b.Fatal(err)
	}
	sketch := make([]byte, 64<<10)
	for i := range sketch {
		sketch[i] = byte(i)
	}
	batch := testBatch(16, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.AppendBatch(batch, nil); err != nil {
			b.Fatal(err)
		}
		if err := l.Compact(sketch); err != nil {
			b.Fatal(err)
		}
	}
}
