package kcenter

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"coresetclustering/internal/core"
	"coresetclustering/internal/gmm"
	"coresetclustering/internal/metric"
)

// Point is a vector in d-dimensional space. All points passed to one call
// must share the same dimensionality.
type Point = metric.Point

// Dataset is a collection of points.
type Dataset = metric.Dataset

// Distance measures the distance between two points; it must satisfy the
// metric axioms for the approximation guarantees to hold, and it must be
// safe for concurrent calls — the distance engine invokes it from multiple
// goroutines unless WithWorkers(1) pins the sequential path.
type Distance = metric.Distance

// Built-in distance functions.
var (
	// Euclidean is the L2 distance (the default).
	Euclidean Distance = metric.Euclidean
	// Manhattan is the L1 distance.
	Manhattan Distance = metric.Manhattan
	// Chebyshev is the L-infinity distance.
	Chebyshev Distance = metric.Chebyshev
	// Angular is the normalised angular distance, a proper metric for
	// direction-valued data such as embeddings.
	Angular Distance = metric.Angular
)

// Space is a first-class metric space: a named distance function plus the
// batched block kernels and the comparison-domain surrogate every hot path
// of the library runs on. Every Distance passed through WithDistance is
// upgraded to its native Space automatically (built-ins) or wrapped in the
// identity-surrogate adapter (custom functions); WithSpace selects a space
// explicitly.
type Space = metric.Space

// Built-in metric spaces, the native (surrogate-accelerated) counterparts of
// the distance functions above.
var (
	// EuclideanSpace compares in the squared-L2 surrogate domain: no square
	// root per evaluation, one per reported radius.
	EuclideanSpace Space = metric.EuclideanSpace
	// ManhattanSpace and ChebyshevSpace batch the coordinate loops; their
	// surrogate is the distance itself.
	ManhattanSpace Space = metric.ManhattanSpace
	ChebyshevSpace Space = metric.ChebyshevSpace
	// AngularSpace and CosineSpace compare by negated cosine similarity: no
	// arccos per evaluation, and the query point's norm is computed once per
	// block.
	AngularSpace Space = metric.AngularSpace
	CosineSpace  Space = metric.CosineSpace
)

// SpaceByName returns the built-in space registered under name ("euclidean",
// "manhattan", "chebyshev", "angular", "cosine"), or nil for an unknown
// name. Named spaces are what the sketch codec serializes.
func SpaceByName(name string) Space { return metric.SpaceByName(name) }

// SpaceFromDistance wraps a custom scalar distance function into a Space
// with the identity surrogate: every kernel evaluation calls dist exactly
// once and no comparison-domain shortcut is taken. The wrapped function must
// satisfy the metric axioms and be safe for concurrent calls. This is the
// adapter WithDistance applies implicitly to custom functions; it is
// exported for callers that want to name their metric or pin the adapter
// path explicitly (e.g. for benchmarking against a native space).
func SpaceFromDistance(name string, dist Distance) Space {
	return metric.SpaceFromDistance(name, dist)
}

// options collects the tunables shared by Cluster and ClusterWithOutliers.
type options struct {
	distance          Distance
	space             Space
	ell               int
	coresetMultiplier int
	eps               float64
	parallelism       int
	workers           int
	randomized        bool
	seed              int64
	seedSet           bool
	windowSize        int64
	windowDuration    int64
}

// Option customises Cluster and ClusterWithOutliers.
type Option func(*options)

// WithDistance selects the distance function (default Euclidean). Built-in
// functions are upgraded to their native metric spaces; custom functions run
// through the SpaceFromDistance adapter, which calls them once per
// evaluation exactly as in previous releases.
func WithDistance(d Distance) Option {
	return func(o *options) {
		o.distance = d
		o.space = nil
	}
}

// WithSpace selects the metric space explicitly, overriding WithDistance.
// Use a built-in space (EuclideanSpace, ...) for the surrogate-accelerated
// native kernels, or SpaceFromDistance for a custom metric. The determinism
// contract is unchanged: for the built-in spaces whose surrogate is an exact
// monotone prefix of the true distance (Euclidean, Manhattan, Chebyshev),
// results are bit-identical between the native and adapter paths, and for
// every space they are bit-identical across worker counts.
func WithSpace(s Space) Option {
	return func(o *options) {
		if s != nil {
			o.space = s
			o.distance = s.Dist()
		}
	}
}

// WithPartitions fixes the number of partitions (the parallelism ell of the
// first round). The default is the paper's memory-balancing choice
// ell = sqrt(|S| / (k+z)), clamped to at least 1.
func WithPartitions(ell int) Option {
	return func(o *options) { o.ell = ell }
}

// WithCoresetMultiplier sets the per-partition coreset size to mu*(k+z)
// (mu*k without outliers). Larger multipliers give better solutions at the
// cost of more memory and time; mu = 1 reproduces the Malkomes et al.
// baseline. The default is 4. Mutually exclusive with WithPrecision.
func WithCoresetMultiplier(mu int) Option {
	return func(o *options) { o.coresetMultiplier = mu }
}

// WithPrecision sets the precision parameter eps of the coreset stopping rule
// instead of a fixed coreset size: each partition keeps selecting centers
// until the residual radius drops below eps/2 times its k-center (or
// (k+z)-center) radius. The resulting approximation factors are 2+eps and
// 3+eps. Mutually exclusive with WithCoresetMultiplier.
func WithPrecision(eps float64) Option {
	return func(o *options) { o.eps = eps }
}

// WithParallelism bounds the number of partitions processed concurrently
// (default: one goroutine per CPU).
func WithParallelism(workers int) Option {
	return func(o *options) { o.parallelism = workers }
}

// WithWorkers sets the parallelism degree of the distance engine: the number
// of goroutines over which every distance-dominated pass (Gonzalez scans,
// nearest-center assignment, radius computation, the outlier covering loop)
// is chunked. n <= 0 (the default) selects one worker per available CPU; 1
// forces the fully sequential path.
//
// The determinism contract: centers, radii and assignments are bit-identical
// for every worker count — parallelism is applied only across independent
// points, ties resolve to the lowest index, and all reductions are ordered.
// WithWorkers therefore only trades wall-clock time for CPUs, never quality
// or reproducibility.
//
// With more than one worker the Distance function is called from multiple
// goroutines concurrently; custom distances carrying mutable state need
// their own synchronisation or WithWorkers(1).
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithWindowSize makes NewWindowedKCenter / NewWindowedOutliers summarise
// only the last n points of the stream (a count-based sliding window). It
// composes with WithWindowDuration: with both set, a point stays live only
// while it satisfies both bounds. It has no effect on the non-windowed entry
// points.
func WithWindowSize(n int) Option {
	return func(o *options) { o.windowSize = int64(n) }
}

// WithWindowDuration makes NewWindowedKCenter / NewWindowedOutliers summarise
// only the points whose timestamp ts satisfies ts > now-d, where now is the
// newest observed (or advanced-to) timestamp — the half-open window (now-d,
// now], mirroring the count window's "last n points". Timestamps are the
// non-negative int64 ticks supplied to ObserveAt — the library never reads a
// clock — and d is expressed in the same caller-defined units. It composes
// with WithWindowSize and has no effect on the non-windowed entry points.
func WithWindowDuration(d int64) Option {
	return func(o *options) { o.windowDuration = d }
}

// WithRandomizedPartitioning switches ClusterWithOutliers to the randomized
// variant of the paper: points are spread over the partitions uniformly at
// random, which shrinks the per-partition coreset size from k+z to
// k + 6(z/ell + log2 n) reference centers and defeats adversarial input
// orders. It has no effect on Cluster (whose guarantee does not depend on the
// partitioning).
func WithRandomizedPartitioning(seed int64) Option {
	return func(o *options) {
		o.randomized = true
		o.seed = seed
		o.seedSet = true
	}
}

func buildOptions(opts []Option) (options, error) {
	o := options{distance: Euclidean, coresetMultiplier: 4}
	for _, opt := range opts {
		opt(&o)
	}
	if o.space == nil {
		o.space = metric.SpaceFor(o.distance)
	}
	if o.eps > 0 {
		o.coresetMultiplier = 0 // precision rule replaces the fixed size
	}
	if o.eps < 0 {
		return o, fmt.Errorf("kcenter: negative precision %v", o.eps)
	}
	if o.coresetMultiplier < 0 {
		return o, fmt.Errorf("kcenter: negative coreset multiplier %d", o.coresetMultiplier)
	}
	if o.ell < 0 {
		return o, fmt.Errorf("kcenter: negative partition count %d", o.ell)
	}
	if o.windowSize < 0 {
		return o, fmt.Errorf("kcenter: negative window size %d", o.windowSize)
	}
	if o.windowDuration < 0 {
		return o, fmt.Errorf("kcenter: negative window duration %d", o.windowDuration)
	}
	return o, nil
}

// defaultEll is the paper's memory-balancing partition count
// ell = sqrt(n/(k+z)).
func defaultEll(n, kz int) int {
	if kz <= 0 {
		kz = 1
	}
	ell := int(math.Sqrt(float64(n) / float64(kz)))
	if ell < 1 {
		ell = 1
	}
	return ell
}

// RunStats reports resource usage of a clustering call.
type RunStats struct {
	// Partitions is the number of partitions used in the first round.
	Partitions int
	// CoresetUnionSize is the number of points gathered by the second round.
	CoresetUnionSize int
	// LocalMemoryPeak is the largest number of points held by one worker.
	LocalMemoryPeak int
	// CoresetTime and FinalTime are the durations of the two rounds.
	CoresetTime time.Duration
	FinalTime   time.Duration
}

// Clustering is the result of Cluster.
type Clustering struct {
	// Centers are the k selected centers.
	Centers Dataset
	// Radius is the maximum distance of any input point to its closest
	// center.
	Radius float64
	// Assignment maps each input point (by position) to the index of its
	// closest center.
	Assignment []int
	// Stats reports resource usage.
	Stats RunStats
}

// Cluster solves the k-center problem on points using the paper's 2-round
// coreset algorithm, with partitions processed on parallel goroutines. The
// approximation factor is 2+eps, where eps shrinks as the coreset multiplier
// (or precision parameter) grows.
func Cluster(points Dataset, k int, opts ...Option) (*Clustering, error) {
	if len(points) == 0 {
		return nil, errors.New("kcenter: empty dataset")
	}
	if err := points.Validate(); err != nil {
		return nil, fmt.Errorf("kcenter: %w", err)
	}
	if k <= 0 {
		return nil, fmt.Errorf("kcenter: k must be positive, got %d", k)
	}
	if k >= len(points) {
		// Degenerate but legitimate: every point is a center.
		centers := points.Clone()
		return &Clustering{
			Centers:    centers,
			Radius:     0,
			Assignment: identityAssignment(len(points)),
			Stats:      RunStats{Partitions: 1, CoresetUnionSize: len(points), LocalMemoryPeak: len(points)},
		}, nil
	}
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	ell := o.ell
	if ell == 0 {
		ell = defaultEll(len(points), k)
	}
	cfg := core.KCenterConfig{
		K:           k,
		Ell:         ell,
		Distance:    o.distance,
		Space:       o.space,
		Parallelism: o.parallelism,
		Workers:     o.workers,
	}
	if o.eps > 0 {
		cfg.Eps = o.eps
	} else {
		cfg.CoresetSize = o.coresetMultiplier * k
	}
	res, err := core.KCenter(points, cfg)
	if err != nil {
		return nil, err
	}
	return &Clustering{
		Centers:    res.Centers,
		Radius:     res.Radius,
		Assignment: metric.NewEngine(o.workers).Assign(o.space, points, res.Centers),
		Stats: RunStats{
			Partitions:       ell,
			CoresetUnionSize: res.CoresetUnionSize,
			LocalMemoryPeak:  res.LocalMemoryPeak,
			CoresetTime:      res.CoresetTime,
			FinalTime:        res.FinalTime,
		},
	}, nil
}

// OutliersClustering is the result of ClusterWithOutliers.
type OutliersClustering struct {
	// Centers are the (at most k) selected centers.
	Centers Dataset
	// Radius is the maximum distance to the centers after discarding the z
	// farthest points.
	Radius float64
	// Outliers are the indices (into the input) of the z points farthest
	// from the centers — the points the clustering chose to disregard.
	Outliers []int
	// Assignment maps each input point to the index of its closest center;
	// outlier positions are assigned too (to their nearest center), callers
	// that want to exclude them should consult Outliers.
	Assignment []int
	// Stats reports resource usage.
	Stats RunStats
}

// ClusterWithOutliers solves the k-center problem with z outliers using the
// paper's 2-round coreset algorithm (deterministic partitioning by default,
// randomized with WithRandomizedPartitioning). The approximation factor is
// 3+eps.
func ClusterWithOutliers(points Dataset, k, z int, opts ...Option) (*OutliersClustering, error) {
	if len(points) == 0 {
		return nil, errors.New("kcenter: empty dataset")
	}
	if err := points.Validate(); err != nil {
		return nil, fmt.Errorf("kcenter: %w", err)
	}
	if k <= 0 {
		return nil, fmt.Errorf("kcenter: k must be positive, got %d", k)
	}
	if z < 0 {
		return nil, fmt.Errorf("kcenter: z must be non-negative, got %d", z)
	}
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	if k+z >= len(points) {
		centers := points.Clone()
		if len(centers) > k {
			centers = centers[:k]
		}
		return &OutliersClustering{
			Centers:    centers,
			Radius:     0,
			Outliers:   nil,
			Assignment: metric.NewEngine(o.workers).Assign(o.space, points, centers),
			Stats:      RunStats{Partitions: 1, CoresetUnionSize: len(points), LocalMemoryPeak: len(points)},
		}, nil
	}
	ell := o.ell
	if ell == 0 {
		ell = defaultEll(len(points), k+z)
	}
	cfg := core.OutliersConfig{
		K:           k,
		Z:           z,
		Ell:         ell,
		Distance:    o.distance,
		Space:       o.space,
		Parallelism: o.parallelism,
		Workers:     o.workers,
		Randomized:  o.randomized,
		EpsHat:      0.25,
	}
	if o.randomized && o.seedSet {
		cfg.Rand = rand.New(rand.NewSource(o.seed))
	}
	if o.eps > 0 {
		// Theorem 2 uses epsHat = eps/6 both for the coreset rule and the
		// OutliersCluster slack.
		cfg.EpsHat = o.eps / 6
		cfg.CoresetSize = 0
	} else {
		ref := k + z
		if o.randomized {
			ref = k + 6*(z/ell+1)
		}
		cfg.CoresetSize = o.coresetMultiplier * ref
	}
	res, err := core.KCenterOutliers(points, cfg)
	if err != nil {
		return nil, err
	}
	// One nearest-center pass feeds both the outlier selection and the
	// assignment.
	dists, assignment := metric.NewEngine(o.workers).NearestBatch(o.space, points, res.Centers)
	return &OutliersClustering{
		Centers:    res.Centers,
		Radius:     res.Radius,
		Outliers:   farthestIndices(dists, z),
		Assignment: assignment,
		Stats: RunStats{
			Partitions:       ell,
			CoresetUnionSize: res.CoresetUnionSize,
			LocalMemoryPeak:  res.LocalMemoryPeak,
			CoresetTime:      res.CoresetTime,
			FinalTime:        res.SolveTime,
		},
	}, nil
}

// Gonzalez runs the classic sequential 2-approximation greedy (GMM) and
// returns k centers together with the clustering radius. It is the
// best-known-quality sequential baseline and the building block of every
// coreset construction in this library.
func Gonzalez(points Dataset, k int, opts ...Option) (*Clustering, error) {
	if len(points) == 0 {
		return nil, errors.New("kcenter: empty dataset")
	}
	if err := points.Validate(); err != nil {
		return nil, fmt.Errorf("kcenter: %w", err)
	}
	if k <= 0 {
		return nil, fmt.Errorf("kcenter: k must be positive, got %d", k)
	}
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	res, err := gmm.Runner{Space: o.space, Workers: o.workers}.Run(points, k, 0)
	if err != nil {
		return nil, err
	}
	return &Clustering{
		Centers:    res.Centers,
		Radius:     res.Radius,
		Assignment: res.Assignment,
		Stats:      RunStats{Partitions: 1, CoresetUnionSize: len(points), LocalMemoryPeak: len(points)},
	}, nil
}

// Radius reports the k-center objective of a clustering: the maximum distance
// from any point to its nearest center. An empty center set yields +Inf for
// non-empty points. It accepts WithDistance and WithWorkers; as everywhere in
// the library, the result is bit-identical for every worker count.
func Radius(points, centers Dataset, opts ...Option) (float64, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return 0, err
	}
	return metric.NewEngine(o.workers).Radius(o.space, points, centers), nil
}

// RadiusExcluding reports the outlier-aware k-center objective: the maximum
// distance from points to centers after discarding the z points farthest from
// the centers. It returns 0 when z >= len(points).
func RadiusExcluding(points, centers Dataset, z int, opts ...Option) (float64, error) {
	if z < 0 {
		return 0, fmt.Errorf("kcenter: z must be non-negative, got %d", z)
	}
	o, err := buildOptions(opts)
	if err != nil {
		return 0, err
	}
	return metric.NewEngine(o.workers).RadiusExcluding(o.space, points, centers, z), nil
}

// EstimateDoublingDimension reports an empirical estimate of the doubling
// dimension of the dataset, the parameter that governs the space-accuracy
// trade-off of every algorithm in this library. It is a sampling heuristic
// meant for diagnostics; the MapReduce algorithms never need it.
func EstimateDoublingDimension(points Dataset, opts ...Option) (float64, error) {
	if len(points) == 0 {
		return 0, errors.New("kcenter: empty dataset")
	}
	o, err := buildOptions(opts)
	if err != nil {
		return 0, err
	}
	return metric.NewEngine(o.workers).EstimateDoublingDimension(o.space, points, 8, 4, nil), nil
}

// farthestIndices returns the indices of the z points farthest from their
// closest center, given each point's nearest-center distance (the outliers
// implied by a clustering). The selection scans the distance vector
// sequentially, so the output does not depend on how dists was computed.
func farthestIndices(dists []float64, z int) []int {
	if z <= 0 || len(dists) == 0 {
		return nil
	}
	if z > len(dists) {
		z = len(dists)
	}
	type pd struct {
		idx int
		d   float64
	}
	all := make([]pd, len(dists))
	for i := range dists {
		all[i] = pd{idx: i, d: dists[i]}
	}
	// Partial selection of the z largest distances.
	out := make([]int, 0, z)
	for len(out) < z {
		best := -1
		for i := range all {
			if all[i].idx < 0 {
				continue
			}
			if best < 0 || all[i].d > all[best].d {
				best = i
			}
		}
		out = append(out, all[best].idx)
		all[best].idx = -1
	}
	return out
}

func identityAssignment(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
