package kcenter

import (
	"bytes"
	"testing"
)

// snapshotOf fails the test on snapshot errors so clone assertions stay flat.
func snapshotOf(t *testing.T, s interface{ Snapshot() ([]byte, error) }) []byte {
	t.Helper()
	b, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStreamingKCenterCloneIsSnapshotIsolated: a clone is a point-in-time
// copy — further ingest into the original never leaks into it, and feeding
// the clone the same suffix reproduces the original bit-identically (the
// determinism contract extends to clones).
func TestStreamingKCenterCloneIsSnapshotIsolated(t *testing.T) {
	data := clusteredTestData(400, 3, 4, 11)
	orig, err := NewStreamingKCenter(4, 48)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.ObserveAll(data[:200]); err != nil {
		t.Fatal(err)
	}
	cl := orig.Clone()
	atClone := snapshotOf(t, cl)
	if !bytes.Equal(atClone, snapshotOf(t, orig)) {
		t.Fatal("clone snapshot differs from the original at clone time")
	}
	if err := orig.ObserveAll(data[200:]); err != nil {
		t.Fatal(err)
	}
	if got := snapshotOf(t, cl); !bytes.Equal(got, atClone) {
		t.Fatal("ingest into the original mutated the clone")
	}
	if cl.Observed() != 200 || orig.Observed() != 400 {
		t.Fatalf("observed: clone=%d orig=%d", cl.Observed(), orig.Observed())
	}
	// The clone is fully live: catching it up must converge on the original.
	if err := cl.ObserveAll(data[200:]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapshotOf(t, cl), snapshotOf(t, orig)) {
		t.Fatal("caught-up clone diverges from the original")
	}
}

// TestStreamingCloneWhileBuffering exercises the pre-coreset phase: before
// the budget fills, the doubling state is still buffering (a semantically
// distinct nil-centers state a naive copy would corrupt).
func TestStreamingCloneWhileBuffering(t *testing.T) {
	data := clusteredTestData(100, 2, 3, 7)
	orig, err := NewStreamingKCenter(3, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.ObserveAll(data[:10]); err != nil { // well under the budget
		t.Fatal(err)
	}
	cl := orig.Clone()
	if err := orig.ObserveAll(data[10:]); err != nil {
		t.Fatal(err)
	}
	if err := cl.ObserveAll(data[10:]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapshotOf(t, cl), snapshotOf(t, orig)) {
		t.Fatal("clone taken while buffering diverges after catch-up")
	}
}

func TestStreamingOutliersCloneIsSnapshotIsolated(t *testing.T) {
	data := clusteredTestData(300, 3, 4, 13)
	orig, err := NewStreamingOutliers(3, 5, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.ObserveAll(data[:150]); err != nil {
		t.Fatal(err)
	}
	cl := orig.Clone()
	atClone := snapshotOf(t, cl)
	if err := orig.ObserveAll(data[150:]); err != nil {
		t.Fatal(err)
	}
	if got := snapshotOf(t, cl); !bytes.Equal(got, atClone) {
		t.Fatal("ingest into the original mutated the clone")
	}
	if _, err := cl.Centers(); err != nil {
		t.Fatal(err)
	}
	if err := cl.ObserveAll(data[150:]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapshotOf(t, cl), snapshotOf(t, orig)) {
		t.Fatal("caught-up clone diverges from the original")
	}
}

// TestWindowedCloneIsSnapshotIsolated covers the copy-on-write window clone:
// sealed buckets are shared, so ingest, bucket coalescing and eviction in the
// original must never show through, and querying the clone (which memoises a
// merged coreset internally) must not perturb the original either.
func TestWindowedCloneIsSnapshotIsolated(t *testing.T) {
	data := clusteredTestData(600, 2, 4, 17)
	orig, err := NewWindowedKCenter(3, 24, WithWindowSize(200))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range data[:300] {
		if err := orig.ObserveAt(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	cl := orig.Clone()
	atClone := snapshotOf(t, cl)

	// Query the clone first: Centers memoises the merged live coreset, and
	// that memo must stay private to the clone.
	cloneCenters, err := cl.Centers()
	if err != nil {
		t.Fatal(err)
	}
	// Push the original far enough to coalesce and evict whole buckets.
	for i, p := range data[300:] {
		if err := orig.ObserveAt(p, int64(300+i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := snapshotOf(t, cl); !bytes.Equal(got, atClone) {
		t.Fatal("ingest into the original mutated the clone")
	}
	again, err := cl.Centers()
	if err != nil {
		t.Fatal(err)
	}
	assertSameCenters(t, cloneCenters, again)
	if cl.Observed() != 300 || orig.Observed() != 600 {
		t.Fatalf("observed: clone=%d orig=%d", cl.Observed(), orig.Observed())
	}

	// Catch-up determinism, same as the insertion-only clusterers.
	for i, p := range data[300:] {
		if err := cl.ObserveAt(p, int64(300+i)); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(snapshotOf(t, cl), snapshotOf(t, orig)) {
		t.Fatal("caught-up clone diverges from the original")
	}
}

func TestWindowedOutliersCloneIsSnapshotIsolated(t *testing.T) {
	data := clusteredTestData(400, 2, 4, 19)
	orig, err := NewWindowedOutliers(3, 4, 21, WithWindowDuration(100))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range data[:200] {
		if err := orig.ObserveAt(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	cl := orig.Clone()
	atClone := snapshotOf(t, cl)
	for i, p := range data[200:] {
		if err := orig.ObserveAt(p, int64(200+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := orig.Advance(450); err != nil { // evict everything before ts 350
		t.Fatal(err)
	}
	if got := snapshotOf(t, cl); !bytes.Equal(got, atClone) {
		t.Fatal("ingest/eviction in the original mutated the clone")
	}
	for i, p := range data[200:] {
		if err := cl.ObserveAt(p, int64(200+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Advance(450); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapshotOf(t, cl), snapshotOf(t, orig)) {
		t.Fatal("caught-up clone diverges from the original")
	}
}
