package kcenter

import (
	"errors"
	"fmt"

	"coresetclustering/internal/streaming"
)

// StreamingKCenter is a one-pass streaming k-center clusterer with a fixed
// working-memory budget. It maintains a weighted coreset of at most budget
// points with the doubling algorithm; Centers extracts the final k centers at
// any time with the Gonzalez greedy. A budget of mu*k points yields quality
// comparable to the 2+eps MapReduce algorithm on data of bounded doubling
// dimension.
type StreamingKCenter struct {
	inner *streaming.CoresetStream
}

// NewStreamingKCenter creates a streaming clusterer for k centers with the
// given working-memory budget (in points, at least k).
func NewStreamingKCenter(k, budget int, opts ...Option) (*StreamingKCenter, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	if o.windowSize != 0 || o.windowDuration != 0 {
		return nil, errors.New("kcenter: this stream is insertion-only; use NewWindowedKCenter for sliding windows")
	}
	inner, err := streaming.NewCoresetStreamIn(o.space, k, budget)
	if err != nil {
		return nil, fmt.Errorf("kcenter: %w", err)
	}
	inner.SetWorkers(o.workers)
	return &StreamingKCenter{inner: inner}, nil
}

// Observe consumes the next point of the stream.
func (s *StreamingKCenter) Observe(p Point) error {
	if p == nil {
		return errors.New("kcenter: nil point")
	}
	return s.inner.Process(p)
}

// ObserveAll consumes a batch of points in order.
func (s *StreamingKCenter) ObserveAll(points Dataset) error {
	for _, p := range points {
		if err := s.Observe(p); err != nil {
			return err
		}
	}
	return nil
}

// Centers returns k centers summarising everything observed so far. It may
// be called repeatedly; observation can continue afterwards.
func (s *StreamingKCenter) Centers() (Dataset, error) { return s.inner.Result() }

// Clone returns a deep copy of the clusterer: a point-in-time snapshot that
// answers Centers and Snapshot — and can even keep observing — independently
// of the original. The state is bounded by the budget, so a clone is cheap;
// it is the building block of snapshot-isolated query views (clone under the
// writer's lock, publish the clone, query it without any lock).
func (s *StreamingKCenter) Clone() *StreamingKCenter {
	return &StreamingKCenter{inner: s.inner.Clone()}
}

// WorkingMemory reports the number of points currently retained.
func (s *StreamingKCenter) WorkingMemory() int { return s.inner.WorkingMemory() }

// Observed reports how many points have been consumed.
func (s *StreamingKCenter) Observed() int64 { return s.inner.Processed() }

// StreamingOutliers is a one-pass streaming clusterer for the k-center
// problem with z outliers (the paper's Theorem 3 algorithm). It maintains a
// weighted coreset of at most budget points; Centers runs the weighted
// outlier-aware clustering on the coreset at query time.
type StreamingOutliers struct {
	inner *streaming.CoresetOutliers
	z     int
}

// NewStreamingOutliers creates a streaming clusterer for k centers and z
// outliers with the given working-memory budget (in points, at least k+z).
func NewStreamingOutliers(k, z, budget int, opts ...Option) (*StreamingOutliers, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	if o.windowSize != 0 || o.windowDuration != 0 {
		return nil, errors.New("kcenter: this stream is insertion-only; use NewWindowedOutliers for sliding windows")
	}
	inner, err := streaming.NewCoresetOutliersIn(o.space, k, z, budget, 0.25)
	if err != nil {
		return nil, fmt.Errorf("kcenter: %w", err)
	}
	inner.SetWorkers(o.workers)
	return &StreamingOutliers{inner: inner, z: z}, nil
}

// Observe consumes the next point of the stream.
func (s *StreamingOutliers) Observe(p Point) error {
	if p == nil {
		return errors.New("kcenter: nil point")
	}
	return s.inner.Process(p)
}

// ObserveAll consumes a batch of points in order.
func (s *StreamingOutliers) ObserveAll(points Dataset) error {
	for _, p := range points {
		if err := s.Observe(p); err != nil {
			return err
		}
	}
	return nil
}

// Centers returns at most k centers; up to z observed points may be left
// uncovered (the outliers).
func (s *StreamingOutliers) Centers() (Dataset, error) {
	res, err := s.inner.Result()
	if err != nil {
		return nil, err
	}
	return res.Centers, nil
}

// Clone returns a deep copy of the clusterer, with the same semantics as
// (*StreamingKCenter).Clone.
func (s *StreamingOutliers) Clone() *StreamingOutliers {
	return &StreamingOutliers{inner: s.inner.Clone(), z: s.z}
}

// WorkingMemory reports the number of points currently retained.
func (s *StreamingOutliers) WorkingMemory() int { return s.inner.WorkingMemory() }

// Observed reports how many points have been consumed.
func (s *StreamingOutliers) Observed() int64 { return s.inner.Processed() }
