package kcenter

// Determinism goldens and property tests for the parallel distance engine:
// the public API must produce bit-identical results for any WithWorkers
// setting, and the coreset algorithms must respect both the paper's quality
// guarantee and their distance-evaluation budgets whether they run
// sequentially or in parallel.

import (
	"math/rand"
	"testing"

	"coresetclustering/internal/metric"
)

// clusteredTestData generates a mixture of well-separated Gaussian blobs:
// low doubling dimension, the regime the paper's guarantees are stated for.
func clusteredTestData(n, dim, blobs int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]Point, blobs)
	for b := range centers {
		c := make(Point, dim)
		for j := range c {
			c[j] = rng.Float64() * 100
		}
		centers[b] = c
	}
	ds := make(Dataset, n)
	for i := range ds {
		c := centers[rng.Intn(blobs)]
		p := make(Point, dim)
		for j := range p {
			p[j] = c[j] + rng.NormFloat64()
		}
		ds[i] = p
	}
	return ds
}

func requireSameClustering(t *testing.T, label string, want, got *Clustering) {
	t.Helper()
	if got.Radius != want.Radius {
		t.Fatalf("%s: radius = %v, want %v", label, got.Radius, want.Radius)
	}
	if len(got.Centers) != len(want.Centers) {
		t.Fatalf("%s: %d centers, want %d", label, len(got.Centers), len(want.Centers))
	}
	for i := range want.Centers {
		if !got.Centers[i].Equal(want.Centers[i]) {
			t.Fatalf("%s: center %d differs: %v vs %v", label, i, got.Centers[i], want.Centers[i])
		}
	}
	for i := range want.Assignment {
		if got.Assignment[i] != want.Assignment[i] {
			t.Fatalf("%s: assignment[%d] = %d, want %d", label, i, got.Assignment[i], want.Assignment[i])
		}
	}
}

// TestClusterDeterminismAcrossWorkers is the public-API golden: same data,
// same options, sequential (WithWorkers(1)) versus WithWorkers(8) — centers,
// radius and assignment must match bit for bit.
func TestClusterDeterminismAcrossWorkers(t *testing.T) {
	ds := clusteredTestData(10000, 4, 12, 1)
	want, err := Cluster(ds, 10, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Cluster(ds, 10, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	requireSameClustering(t, "Cluster", want, got)
}

// TestGonzalezDeterminismAcrossWorkers: same golden for the sequential
// baseline entry point, which above the engine cutoff runs its scans in
// parallel.
func TestGonzalezDeterminismAcrossWorkers(t *testing.T) {
	ds := clusteredTestData(9000, 3, 10, 2)
	want, err := Gonzalez(ds, 15, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Gonzalez(ds, 15, WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	requireSameClustering(t, "Gonzalez", want, got)
}

// TestClusterWithOutliersDeterminismAcrossWorkers: the outlier pipeline
// (coresets, radius search, covering loop, outlier selection) under both
// partitioning variants.
func TestClusterWithOutliersDeterminismAcrossWorkers(t *testing.T) {
	ds := clusteredTestData(9000, 3, 8, 3)
	for _, opts := range [][]Option{
		nil,
		{WithRandomizedPartitioning(99)},
	} {
		seqOpts := append(append([]Option{}, opts...), WithWorkers(1))
		parOpts := append(append([]Option{}, opts...), WithWorkers(8))
		want, err := ClusterWithOutliers(ds, 6, 20, seqOpts...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ClusterWithOutliers(ds, 6, 20, parOpts...)
		if err != nil {
			t.Fatal(err)
		}
		if got.Radius != want.Radius {
			t.Fatalf("radius = %v, want %v", got.Radius, want.Radius)
		}
		for i := range want.Centers {
			if !got.Centers[i].Equal(want.Centers[i]) {
				t.Fatalf("center %d differs", i)
			}
		}
		if len(got.Outliers) != len(want.Outliers) {
			t.Fatalf("%d outliers, want %d", len(got.Outliers), len(want.Outliers))
		}
		for i := range want.Outliers {
			if got.Outliers[i] != want.Outliers[i] {
				t.Fatalf("outlier[%d] = %d, want %d", i, got.Outliers[i], want.Outliers[i])
			}
		}
		for i := range want.Assignment {
			if got.Assignment[i] != want.Assignment[i] {
				t.Fatalf("assignment[%d] = %d, want %d", i, got.Assignment[i], want.Assignment[i])
			}
		}
	}
}

// TestStreamingDeterminismAcrossWorkers: the streaming wrappers' query-time
// extraction must be worker-independent too.
func TestStreamingDeterminismAcrossWorkers(t *testing.T) {
	ds := clusteredTestData(4000, 3, 6, 4)
	extract := func(workers int) Dataset {
		s, err := NewStreamingKCenter(8, 120, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.ObserveAll(ds); err != nil {
			t.Fatal(err)
		}
		centers, err := s.Centers()
		if err != nil {
			t.Fatal(err)
		}
		return centers
	}
	want := extract(1)
	got := extract(8)
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("streaming center %d differs", i)
		}
	}
}

// TestCoresetQualityProperty is the property test for the paper's central
// guarantee (Theorem 1): on random bounded-doubling-dimension data, the
// coreset-then-cluster radius is within (2+eps) of the OPTIMAL radius. Since
// Gonzalez is itself at least OPT, the verifiable property is
//
//	radius(Cluster with precision eps) <= (2+eps) * radius(Gonzalez),
//
// for every sampled eps. Alongside quality, the test asserts the
// distance-call budget: parallel runs must perform exactly as many distance
// evaluations as sequential ones (parallelism reschedules work, it must
// never add work).
func TestCoresetQualityProperty(t *testing.T) {
	for _, seed := range []int64{5, 6, 7} {
		ds := clusteredTestData(6000, 3, 9, seed)
		k := 9
		gonz, err := Gonzalez(ds, k, WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0.25, 0.5, 1.0} {
			run := func(workers int) (*Clustering, int64) {
				counter := metric.NewCounter(metric.Euclidean)
				res, err := Cluster(ds, k,
					WithDistance(counter.Distance),
					WithPrecision(eps),
					WithWorkers(workers),
				)
				if err != nil {
					t.Fatal(err)
				}
				return res, counter.Calls()
			}
			seqRes, seqCalls := run(1)
			parRes, parCalls := run(8)

			bound := (2 + eps) * gonz.Radius
			if seqRes.Radius > bound*(1+1e-12) {
				t.Errorf("seed=%d eps=%v: coreset radius %v exceeds (2+eps)*Gonzalez = %v",
					seed, eps, seqRes.Radius, bound)
			}
			if parRes.Radius != seqRes.Radius {
				t.Errorf("seed=%d eps=%v: parallel radius %v != sequential %v",
					seed, eps, parRes.Radius, seqRes.Radius)
			}
			if parCalls != seqCalls {
				t.Errorf("seed=%d eps=%v: distance budget regressed under parallelism: %d calls vs %d",
					seed, eps, parCalls, seqCalls)
			}
			// Sanity cap on the budget itself: the 2-round algorithm must stay
			// within a small multiple of |S| * |T| work (|T| = coreset union)
			// plus the final assignment/radius passes.
			unionSize := int64(seqRes.Stats.CoresetUnionSize)
			budget := int64(len(ds))*(unionSize+2*int64(k)) + int64(k)*unionSize
			if seqCalls > budget {
				t.Errorf("seed=%d eps=%v: %d distance calls exceed budget %d", seed, eps, seqCalls, budget)
			}
		}
	}
}

// assertSameCenters fails unless the two center sets are identical
// coordinate for coordinate, in order.
func assertSameCenters(t *testing.T, want, got Dataset) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("center count differs across paths: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Fatalf("center %d differs across paths: %v vs %v", i, want[i], got[i])
		}
	}
}

// TestCrossPathGolden is the public-API half of the metric-space layer's
// determinism contract: for every built-in space whose surrogate is an exact
// monotone prefix of its true distance (Euclidean, Manhattan, Chebyshev),
// the native Space path and the Distance-adapter path produce bit-identical
// centers, radii and assignments, for both the MapReduce and the streaming
// algorithms and for every worker count.
func TestCrossPathGolden(t *testing.T) {
	ds := clusteredTestData(4000, 3, 6, 99)
	k, z := 5, 12
	cases := []struct {
		name    string
		native  Space
		adapter Space
	}{
		{"euclidean", EuclideanSpace, SpaceFromDistance("euclidean-adapter", Euclidean)},
		{"manhattan", ManhattanSpace, SpaceFromDistance("manhattan-adapter", Manhattan)},
		{"chebyshev", ChebyshevSpace, SpaceFromDistance("chebyshev-adapter", Chebyshev)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, w := range []int{1, 8} {
				nat, err := Cluster(ds, k, WithSpace(tc.native), WithWorkers(w))
				if err != nil {
					t.Fatal(err)
				}
				ada, err := Cluster(ds, k, WithSpace(tc.adapter), WithWorkers(w))
				if err != nil {
					t.Fatal(err)
				}
				if nat.Radius != ada.Radius {
					t.Fatalf("w=%d: Cluster radius native %v != adapter %v", w, nat.Radius, ada.Radius)
				}
				assertSameCenters(t, nat.Centers, ada.Centers)
				for i := range nat.Assignment {
					if nat.Assignment[i] != ada.Assignment[i] {
						t.Fatalf("w=%d: assignment[%d] differs across paths", w, i)
					}
				}

				natO, err := ClusterWithOutliers(ds, k, z, WithSpace(tc.native), WithWorkers(w))
				if err != nil {
					t.Fatal(err)
				}
				adaO, err := ClusterWithOutliers(ds, k, z, WithSpace(tc.adapter), WithWorkers(w))
				if err != nil {
					t.Fatal(err)
				}
				if natO.Radius != adaO.Radius {
					t.Fatalf("w=%d: outlier radius native %v != adapter %v", w, natO.Radius, adaO.Radius)
				}
				assertSameCenters(t, natO.Centers, adaO.Centers)

				natS, err := NewStreamingKCenter(k, 8*k, WithSpace(tc.native), WithWorkers(w))
				if err != nil {
					t.Fatal(err)
				}
				adaS, err := NewStreamingKCenter(k, 8*k, WithSpace(tc.adapter), WithWorkers(w))
				if err != nil {
					t.Fatal(err)
				}
				if err := natS.ObserveAll(ds); err != nil {
					t.Fatal(err)
				}
				if err := adaS.ObserveAll(ds); err != nil {
					t.Fatal(err)
				}
				natC, err := natS.Centers()
				if err != nil {
					t.Fatal(err)
				}
				adaC, err := adaS.Centers()
				if err != nil {
					t.Fatal(err)
				}
				assertSameCenters(t, natC, adaC)
			}
		})
	}
}
