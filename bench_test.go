package kcenter

// Benchmark harness: one benchmark per figure of the paper's evaluation
// section (Figures 2-8), plus micro-benchmarks of the substrates and ablation
// benchmarks for the design choices called out in DESIGN.md.
//
// The per-figure benchmarks run a reduced single-dataset configuration so the
// whole suite completes in minutes; the full sweeps (all datasets, larger
// sizes, more repetitions) are produced by `go run ./cmd/experiments`.

import (
	"math/rand"
	"testing"

	"coresetclustering/internal/core"
	"coresetclustering/internal/coreset"
	"coresetclustering/internal/dataset"
	"coresetclustering/internal/experiments"
	"coresetclustering/internal/gmm"
	"coresetclustering/internal/metric"
	"coresetclustering/internal/outliers"
	"coresetclustering/internal/streaming"
)

func benchDatasets() []dataset.Name { return []dataset.Name{dataset.Higgs} }

// BenchmarkFigure2MapReduceKCenter reproduces Figure 2: MapReduce k-center
// approximation ratio versus coreset multiplier and parallelism.
func BenchmarkFigure2MapReduceKCenter(b *testing.B) {
	cfg := experiments.Figure2Config{
		Datasets: benchDatasets(),
		N:        4000,
		K:        20,
		Ells:     []int{2, 4, 8, 16},
		Mus:      []int{1, 2, 4, 8},
		Runs:     1,
		Seed:     1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3StreamingKCenter reproduces Figure 3: streaming k-center
// ratio and throughput versus space for CoresetStream and BaseStream.
func BenchmarkFigure3StreamingKCenter(b *testing.B) {
	cfg := experiments.Figure3Config{
		Datasets:    benchDatasets(),
		N:           4000,
		K:           20,
		Multipliers: []int{1, 2, 4, 8, 16},
		Runs:        1,
		Seed:        2,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4MapReduceOutliers reproduces Figure 4: deterministic versus
// randomized MapReduce k-center with outliers under adversarial partitioning.
func BenchmarkFigure4MapReduceOutliers(b *testing.B) {
	cfg := experiments.Figure4Config{
		Datasets: benchDatasets(),
		N:        1500,
		K:        8,
		Z:        20,
		Ell:      8,
		Mus:      []int{1, 2, 4},
		EpsHat:   0.25,
		Runs:     1,
		Seed:     3,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5StreamingOutliers reproduces Figure 5: streaming k-center
// with outliers, CoresetOutliers versus BaseOutliers.
func BenchmarkFigure5StreamingOutliers(b *testing.B) {
	cfg := experiments.Figure5Config{
		Datasets:    benchDatasets(),
		N:           2000,
		K:           8,
		Z:           20,
		Multipliers: []int{1, 2, 4},
		EpsHat:      0.25,
		Runs:        1,
		Seed:        4,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6ScalabilitySize reproduces Figure 6: running time of the
// randomized MapReduce algorithm on inflated dataset instances.
func BenchmarkFigure6ScalabilitySize(b *testing.B) {
	cfg := experiments.Figure6Config{
		Datasets: benchDatasets(),
		BaseN:    4000,
		Factors:  []int{1, 2, 4},
		K:        8,
		Z:        20,
		Ell:      8,
		Mu:       2,
		EpsHat:   0.25,
		Runs:     1,
		Seed:     5,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7ScalabilityProcessors reproduces Figure 7: running time
// versus parallelism at a fixed coreset-union size, split into the coreset
// phase and the OutliersCluster phase.
func BenchmarkFigure7ScalabilityProcessors(b *testing.B) {
	cfg := experiments.Figure7Config{
		Datasets: benchDatasets(),
		N:        20000,
		K:        8,
		Z:        20,
		Ells:     []int{1, 2, 4, 8},
		EpsHat:   0.25,
		Runs:     1,
		Seed:     6,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8Sequential reproduces Figure 8: sequential running time and
// radius of CharikarEtAl, MalkomesEtAl (mu=1) and the coreset algorithm with
// mu = 2, 4, 8 on a dataset sample.
func BenchmarkFigure8Sequential(b *testing.B) {
	cfg := experiments.Figure8Config{
		Datasets: benchDatasets(),
		SampleN:  800,
		K:        8,
		Z:        20,
		Mus:      []int{2, 4, 8},
		EpsHat:   0.25,
		Runs:     1,
		Seed:     7,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the substrates -----------------------------------

func benchPoints(n, dim int, seed int64) metric.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := make(metric.Dataset, n)
	for i := range ds {
		p := make(metric.Point, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		ds[i] = p
	}
	return ds
}

// BenchmarkEuclideanDistance measures the cost of one distance evaluation,
// the dominant primitive of every algorithm here.
func BenchmarkEuclideanDistance(b *testing.B) {
	for _, dim := range []int{7, 50} {
		ds := benchPoints(2, dim, 1)
		b.Run(map[int]string{7: "dim7", 50: "dim50"}[dim], func(b *testing.B) {
			b.ReportAllocs()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += metric.Euclidean(ds[0], ds[1])
			}
			_ = sink
		})
	}
}

// BenchmarkGMM measures the Gonzalez greedy on 10k points.
func BenchmarkGMM(b *testing.B) {
	ds := benchPoints(10000, 7, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gmm.Run(metric.Euclidean, ds, 20, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGonzalezParallel compares the sequential Gonzalez greedy against
// the parallel distance engine on the acceptance-scale instance (n = 50k,
// d = 16): same work, chunked across 1, 2, 4, or all CPUs. The selected
// centers are bit-identical across the sub-benchmarks, so the ratio of the
// ns/op figures is a pure scheduling speedup.
func BenchmarkGonzalezParallel(b *testing.B) {
	ds := benchPoints(50000, 16, 11)
	const k = 50
	for _, w := range []int{1, 2, 4, 0} {
		name := map[int]string{1: "workers1", 2: "workers2", 4: "workers4", 0: "workersAuto"}[w]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			runner := gmm.Runner{Dist: metric.Euclidean, Workers: w}
			for i := 0; i < b.N; i++ {
				if _, err := runner.Run(ds, k, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistanceKernelsParallel measures the blocked kernels of the
// distance engine (assignment and radius over 50k x 16 against 50 centers)
// at sequential and parallel worker counts.
func BenchmarkDistanceKernelsParallel(b *testing.B) {
	ds := benchPoints(50000, 16, 12)
	centers := ds[:50]
	for _, w := range []int{1, 0} {
		name := map[int]string{1: "workers1", 0: "workersAuto"}[w]
		eng := metric.NewEngine(w)
		b.Run("assign/"+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.Assign(metric.EuclideanSpace, ds, centers)
			}
		})
		b.Run("radius/"+name, func(b *testing.B) {
			b.ReportAllocs()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += eng.Radius(metric.EuclideanSpace, ds, centers)
			}
			_ = sink
		})
	}
}

// BenchmarkPublicAPIClusterParallel measures the end-to-end public API with
// the distance engine pinned sequential versus spread over all CPUs.
func BenchmarkPublicAPIClusterParallel(b *testing.B) {
	ds := Dataset(benchPoints(50000, 16, 13))
	for _, w := range []int{1, 0} {
		name := map[int]string{1: "workers1", 0: "workersAuto"}[w]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Cluster(ds, 20, WithWorkers(w)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoresetConstruction measures one partition's coreset build (the
// first-round work of the MapReduce algorithms).
func BenchmarkCoresetConstruction(b *testing.B) {
	ds := benchPoints(10000, 7, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := coreset.Build(metric.Euclidean, ds, coreset.Spec{Size: 200, RefCenters: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamingDoubling measures the per-point cost of the weighted
// doubling algorithm (the streaming coreset construction).
func BenchmarkStreamingDoubling(b *testing.B) {
	ds := benchPoints(20000, 7, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := streaming.NewDoubling(metric.Euclidean, 200)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range ds {
			if err := d.Process(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkOutliersCluster measures one invocation of the weighted
// OutliersCluster greedy on a coreset-sized input.
func BenchmarkOutliersCluster(b *testing.B) {
	ds := benchPoints(1000, 7, 5)
	set := metric.Unweighted(ds)
	diam := metric.Diameter(metric.Euclidean, ds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := outliers.Cluster(metric.Euclidean, set, 10, diam/10, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks ----------------------------------------------------

// BenchmarkAblationStoppingRule compares the two coreset stopping rules: the
// eps-driven rule of the analysis versus the fixed-size rule used by the
// experiments.
func BenchmarkAblationStoppingRule(b *testing.B) {
	ds := benchPoints(5000, 7, 6)
	b.Run("eps-rule", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := coreset.Build(metric.Euclidean, ds, coreset.Spec{Eps: 0.5, RefCenters: 20}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fixed-size", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := coreset.Build(metric.Euclidean, ds, coreset.Spec{Size: 80, RefCenters: 20}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRadiusSearch compares the paper's binary + geometric
// radius search against the exhaustive linear scan over candidate radii.
func BenchmarkAblationRadiusSearch(b *testing.B) {
	ds := benchPoints(400, 7, 7)
	set := metric.Unweighted(ds)
	b.Run("binary-geometric", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := outliers.Solve(metric.Euclidean, set, 8, 10, 0.25, outliers.SearchBinaryGeometric); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := outliers.Solve(metric.Euclidean, set, 8, 10, 0.25, outliers.SearchExhaustive); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPartitioning compares the deterministic and randomized
// first-round partitioning of the outlier algorithm on the same input (with
// the injected outliers placed adversarially for the deterministic variant,
// as in Figure 4).
func BenchmarkAblationPartitioning(b *testing.B) {
	base := benchPoints(2000, 7, 8)
	inj, err := dataset.InjectOutliers(base, 20, 9)
	if err != nil {
		b.Fatal(err)
	}
	k, z, ell := 8, 20, 8
	b.Run("deterministic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, err := core.KCenterOutliers(inj.Points, core.OutliersConfig{
				K: k, Z: z, Ell: ell, CoresetSize: 2 * (k + z), EpsHat: 0.25,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("randomized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, err := core.KCenterOutliers(inj.Points, core.OutliersConfig{
				K: k, Z: z, Ell: ell, CoresetSize: 2 * (k + 6*z/ell), EpsHat: 0.25,
				Randomized: true, Rand: rand.New(rand.NewSource(int64(i))),
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPublicAPICluster measures the end-to-end public API on a mid-size
// input (quick regression guard for the default configuration).
func BenchmarkPublicAPICluster(b *testing.B) {
	ds := Dataset(benchPoints(20000, 7, 10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(ds, 20); err != nil {
			b.Fatal(err)
		}
	}
}
