// Package kcenter is a coreset-based library for the k-center clustering
// problem, with and without outliers, in the sequential, MapReduce-style
// parallel, and streaming settings.
//
// It reproduces the algorithms of
//
//	M. Ceccarello, A. Pietracaprina, G. Pucci:
//	"Solving k-center Clustering (with Outliers) in MapReduce and Streaming,
//	almost as Accurately as Sequentially", PVLDB 12(7), 2019.
//
// # Overview
//
// The k-center problem asks for k centers minimising the maximum distance of
// any point to its closest center; the variant with z outliers allows the z
// farthest points to be discarded. Both are NP-hard; the best polynomial-time
// sequential approximations are 2 (Gonzalez) and 3 (Charikar et al.)
// respectively. The algorithms implemented here achieve 2+eps and 3+eps in
// two MapReduce rounds (or one streaming pass for the outlier variant) by
// building composable coresets with an incremental greedy: selecting more
// than k points per partition makes the union of the coresets an arbitrarily
// good summary of the input, at a space cost governed by the doubling
// dimension of the data.
//
// # Entry points
//
//   - Cluster: k-center on an in-memory dataset, parallelised over
//     goroutine-backed partitions (the MapReduce algorithm of the paper).
//   - ClusterWithOutliers: k-center with z outliers, deterministic or
//     randomized partitioning.
//   - Gonzalez: the classic sequential 2-approximation (GMM), exposed as a
//     baseline and building block.
//   - NewStreamingKCenter / NewStreamingOutliers: one-pass streaming
//     algorithms with a fixed working-memory budget.
//
// The cmd/ directory provides a clustering CLI, a dataset generator, and a
// driver that reproduces every figure of the paper's evaluation; the
// examples/ directory contains runnable programs for common scenarios.
package kcenter
