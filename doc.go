// Package kcenter is a coreset-based library for the k-center clustering
// problem, with and without outliers, in the sequential, MapReduce-style
// parallel, and streaming settings.
//
// It reproduces the algorithms of
//
//	M. Ceccarello, A. Pietracaprina, G. Pucci:
//	"Solving k-center Clustering (with Outliers) in MapReduce and Streaming,
//	almost as Accurately as Sequentially", PVLDB 12(7), 2019.
//
// # Overview
//
// The k-center problem asks for k centers minimising the maximum distance of
// any point to its closest center; the variant with z outliers allows the z
// farthest points to be discarded. Both are NP-hard; the best polynomial-time
// sequential approximations are 2 (Gonzalez) and 3 (Charikar et al.)
// respectively. The algorithms implemented here achieve 2+eps and 3+eps in
// two MapReduce rounds (or one streaming pass for the outlier variant) by
// building composable coresets with an incremental greedy: selecting more
// than k points per partition makes the union of the coresets an arbitrarily
// good summary of the input, at a space cost governed by the doubling
// dimension of the data.
//
// # Entry points
//
//   - Cluster: k-center on an in-memory dataset, parallelised over
//     goroutine-backed partitions (the MapReduce algorithm of the paper).
//   - ClusterWithOutliers: k-center with z outliers, deterministic or
//     randomized partitioning.
//   - Gonzalez: the classic sequential 2-approximation (GMM), exposed as a
//     baseline and building block.
//   - NewStreamingKCenter / NewStreamingOutliers: one-pass streaming
//     algorithms with a fixed working-memory budget.
//
// # Parallelism and determinism
//
// Distance evaluations dominate every algorithm here, and all
// distance-dominated passes (the Gonzalez farthest-point scans,
// nearest-center assignment, radius computation, and the outlier covering
// loop) run on a shared parallel distance engine (internal/metric) that
// chunks the point set across a bounded set of worker goroutines, falling
// back to plain sequential loops below a size cutoff. The WithWorkers option
// controls the degree: 0 (the default) uses one worker per CPU, 1 forces the
// fully sequential path.
//
// The engine honours a strict determinism contract: centers, radii and
// assignments are bit-identical for every worker count. Parallelism is
// applied only across independent points, ties break to the lowest index,
// and per-chunk reductions are combined in chunk order — so WithWorkers
// trades wall-clock time for CPUs without ever changing results. This is on
// top of WithParallelism, which controls how many MapReduce partitions are
// processed concurrently; the two compose (the engine's worker budget is
// divided among concurrently running partitions). One obligation transfers
// to callers: a custom WithDistance function is invoked from multiple
// goroutines whenever more than one worker is in play, so it must be safe
// for concurrent use (the built-in distances are).
//
// The cmd/ directory provides a clustering CLI, a dataset generator, and a
// driver that reproduces every figure of the paper's evaluation; the
// examples/ directory contains runnable programs for common scenarios.
package kcenter
