// Package kcenter is a coreset-based library for the k-center clustering
// problem, with and without outliers, in the sequential, MapReduce-style
// parallel, and streaming settings.
//
// It reproduces the algorithms of
//
//	M. Ceccarello, A. Pietracaprina, G. Pucci:
//	"Solving k-center Clustering (with Outliers) in MapReduce and Streaming,
//	almost as Accurately as Sequentially", PVLDB 12(7), 2019.
//
// # Overview
//
// The k-center problem asks for k centers minimising the maximum distance of
// any point to its closest center; the variant with z outliers allows the z
// farthest points to be discarded. Both are NP-hard; the best polynomial-time
// sequential approximations are 2 (Gonzalez) and 3 (Charikar et al.)
// respectively. The algorithms implemented here achieve 2+eps and 3+eps in
// two MapReduce rounds (or one streaming pass for the outlier variant) by
// building composable coresets with an incremental greedy: selecting more
// than k points per partition makes the union of the coresets an arbitrarily
// good summary of the input, at a space cost governed by the doubling
// dimension of the data.
//
// # Entry points
//
//   - Cluster: k-center on an in-memory dataset, parallelised over
//     goroutine-backed partitions (the MapReduce algorithm of the paper).
//   - ClusterWithOutliers: k-center with z outliers, deterministic or
//     randomized partitioning.
//   - Gonzalez: the classic sequential 2-approximation (GMM), exposed as a
//     baseline and building block.
//   - NewStreamingKCenter / NewStreamingOutliers: one-pass streaming
//     algorithms with a fixed working-memory budget.
//   - NewWindowedKCenter / NewWindowedOutliers: sliding-window streaming —
//     summarise only the last W points and/or the last D time units instead
//     of the whole stream (see below).
//   - Snapshot / RestoreStreamingKCenter / RestoreStreamingOutliers /
//     MergeSketches: durable, mergeable sketches of streaming state for
//     sharded deployments (see below).
//
// # Metric spaces: Space vs Distance
//
// Distance evaluations dominate every algorithm here, so the metric is a
// first-class object: a Space bundles a named distance function with batched
// block kernels and a comparison-domain surrogate. The surrogate is a
// monotone transform of the true distance that is cheaper to evaluate —
// squared Euclidean drops the square root, the angular and cosine spaces
// drop the arccos and reuse the query point's norm across a whole block —
// and every argmin, max and order-statistic reduction runs in the surrogate
// domain. The conversion back to a true distance is applied once per
// REPORTED value (a radius, a nearest-neighbour distance), never once per
// evaluation. On amd64 hardware with AVX the Euclidean kernels additionally
// take a vectorised fast path that is bit-identical to the pure-Go kernels
// by construction (the four SIMD lanes are exactly the four accumulator
// lanes of the canonical summation order).
//
// WithSpace selects a space explicitly (EuclideanSpace, ManhattanSpace,
// ChebyshevSpace, AngularSpace, CosineSpace). WithDistance keeps working
// exactly as before: built-in functions are upgraded to their native spaces
// automatically, and a custom function runs through the SpaceFromDistance
// adapter, which calls it once per evaluation with the identity surrogate —
// no caller breaks, custom metrics lose nothing. Named spaces are what the
// sketch codec serializes, so restoring a sketch resolves the full
// batched-kernel substrate, not just a scalar function.
//
// Datasets can live in contiguous flat storage (one backing buffer, zero
// per-point allocations): cmd/datagen -layout flat emits the binary
// flat-buffer format, and the dataset loaders auto-detect it (CSV parsing is
// the unchanged fallback).
//
// # Parallelism and determinism
//
// All distance-dominated passes (the Gonzalez farthest-point scans,
// nearest-center assignment, radius computation, and the outlier covering
// loop) run on a shared parallel distance engine (internal/metric) that
// chunks the point set across a bounded set of worker goroutines — each
// chunk driven by the space's batched kernels — falling back to sequential
// execution below a size cutoff. The WithWorkers option controls the degree:
// 0 (the default) uses one worker per CPU, 1 forces the fully sequential
// path.
//
// The engine honours a strict determinism contract: centers, radii and
// assignments are bit-identical for every worker count. Parallelism is
// applied only across independent points, ties break to the lowest index,
// and per-chunk reductions are combined in chunk order — so WithWorkers
// trades wall-clock time for CPUs without ever changing results. The
// surrogate domain preserves the contract: each surrogate is computed by
// exactly the floating-point operations that prefix the true distance, and
// the final conversion is the exact remaining operation (monotone and
// correctly rounded), so reductions commute with it bit for bit. For
// Euclidean, Manhattan and Chebyshev the native Space path and the
// Distance-adapter path return bit-identical results, enforced by cross-path
// golden tests. This is on top of WithParallelism, which controls how many
// MapReduce partitions are processed concurrently; the two compose (the
// engine's worker budget is divided among concurrently running partitions).
// One obligation transfers to callers: a custom WithDistance function (or
// Space implementation) is invoked from multiple goroutines whenever more
// than one worker is in play, so it must be safe for concurrent use (the
// built-ins are).
//
// # Sketches and sharding
//
// The streaming clusterers expose their complete state as a sketch: a
// versioned, self-describing binary value holding the doubling algorithm's
// weighted coreset, its lower bound phi, the processed count, the query
// parameters (k, z, epsHat) and the identity of the distance function.
// Snapshot captures one, RestoreStreamingKCenter / RestoreStreamingOutliers
// revive one as a fully live stream (it can keep observing and be
// snapshotted again), and MergeSketches unions sketches built on independent
// shards, re-running the doubling reduction so the merged sketch is back
// under the shared budget — the paper's composable-coreset property as an
// operation on durable values. InspectSketch reports a sketch's metadata
// without restoring it.
//
// Semantics and obligations:
//
//   - Snapshot is a pure read of stream state; observation may continue
//     afterwards. Only built-in distances are serializable — a custom
//     WithDistance function yields ErrSketchUnknownDistance, because a
//     closure cannot be reconstructed on another machine.
//   - Clone is Snapshot's in-process sibling: an O(budget) copy-on-write
//     deep copy of the clusterer's bounded state (windowed clones share
//     their immutable sealed buckets). The clone is a fully live,
//     snapshot-isolated stream — ingest into either side never shows
//     through to the other, and feeding both the same suffix reproduces
//     bit-identical states (the determinism contract extends to clones).
//     Unlike Snapshot, Clone works for custom WithDistance functions.
//   - MergeSketches requires all sketches to agree on kind, distance, k, z,
//     epsHat, budget and dimensionality (ErrSketchIncompatible otherwise).
//     The merge is fully sequential, independent of worker counts, and fixed
//     by argument order; its weights keep accounting for every original
//     point exactly once. Merging does not commute bit-for-bit (center
//     identity may differ with order), but every order satisfies the same
//     quality guarantee.
//   - Decoding validates strictly: truncation, bad magic, unknown versions,
//     kinds or distances, NaN/Inf values, weight and budget inconsistencies,
//     and trailing bytes are rejected with the typed ErrSketch* errors, and
//     the codec never panics on arbitrary input.
//
// # Sliding windows
//
// The insertion-only streams never forget: once observed, a point influences
// the coreset forever, which is wrong for monitoring-style workloads where
// only recent data matters. NewWindowedKCenter and NewWindowedOutliers
// summarise a sliding window instead — the last WithWindowSize points, the
// points of the last WithWindowDuration time units, or the intersection when
// both are set.
//
// Internally (internal/window) the stream is decomposed into a ring of
// timestamped buckets, each an independent doubling coreset of at most
// budget points over a contiguous stream slice. Buckets coalesce in the
// exponential-histogram discipline — sizes grow geometrically towards the
// past, at most a constant number per size class — so the ring holds O(log
// W) buckets and working memory is O(budget * log W) (WorkingMemory reports
// it; the bound is asserted in tests). Coalescing unions the two buckets'
// weighted coresets and, only when over budget, reduces them with the
// paper's composable-coreset move (a weighted farthest-point selection,
// folding dropped weights into the nearest survivor) at an ADDITIVE coverage
// cost per level. Whole buckets are evicted as their newest point ages out
// of the window, so the live summary covers at least the requested window
// and overshoots it by at most the span of the oldest live bucket (a 1/chi
// fraction of the window). Centers runs extraction directly on the weighted
// union of the live bucket coresets — the paper's round-2 pattern — and its
// radius over exactly the live window stays within (2+eps) of a from-scratch
// Gonzalez recompute (enforced by a randomized-schedule property test).
//
// Time is always explicit: ObserveAt and Advance take non-negative,
// non-decreasing int64 ticks in caller-defined units, and the library never
// reads a clock, so eviction, coalescing and queries are pure functions of
// the observed stream. The determinism contract extends unchanged — results
// are bit-identical across worker counts and across a Snapshot -> Restore
// round-trip. Windowed snapshots use their own codec (magic KCWN): the
// window geometry, every bucket's boundaries, and a nested KCSK payload per
// bucket, with the same strict validation, typed errors and fuzz guarantees
// as the insertion-only format. Window sketches restore only as windowed
// streams and cannot be merged (each one summarises a different time range).
//
// cmd/kcenterd serves this subsystem over HTTP: named streams with batch
// ingest (POST /streams/{name}/points), extraction (GET
// /streams/{name}/centers), introspection (GET /streams/{name}/stats),
// durable snapshots (POST /streams/{name}/snapshot), revival (POST
// /streams/{name}/restore) and coordinator-side merging (POST /merge).
// Window streams are created with ?window=N and/or ?windowDur=D on first
// ingest, accept an optional per-point "timestamps" array, and evict
// automatically as batches arrive. Error responses carry stable
// machine-readable codes, and batches are validated in full (finite
// coordinates, rectangular dimensions, sorted timestamps) before any point
// is applied. The streaming clusterers are not safe for concurrent use, so
// writes serialise through the owning stream's mutex: concurrent ingest
// into one stream is safe (batches interleave at batch granularity) and
// distinct streams ingest in parallel.
//
// Reads never take that mutex. After every successful mutation the daemon
// publishes an immutable query view — a Clone of the clusterer plus a
// monotonic version counter — with an atomic pointer swap, and the stats,
// centers and snapshot handlers answer from the latest published view:
// snapshot isolation (a read observes a whole number of batches, never a
// torn mid-batch state), wait-free behind any amount of ingest, WAL fsync
// or background compaction. Centers extraction and snapshot bytes are
// memoised per view, so repeated queries at an unchanged version replay
// cached, byte-identical answers (GET /stats reports the version and the
// cache hit/miss counters). Handlers added to the daemon must preserve this
// discipline: mutate under the stream mutex and publish a fresh view; read
// only from published views. Shutdown is graceful: in-flight requests
// drain before the process exits.
//
// # Durability
//
// The sketches are exactly the compact state a long-running service must
// not lose, and internal/persist turns them into a per-stream durability
// engine for the daemon (kcenterd -persist-dir): the standard
// log+checkpoint recipe.
//
//   - Every stream mutation — creation, ingest batch, clock advance — is
//     appended to a per-stream write-ahead log (magic KCWL) before it is
//     acknowledged: length-prefixed, CRC-32C-checked, sequence-numbered
//     records with typed payloads, decoded strictly (the reader never
//     panics; FuzzWALDecode enforces it).
//   - Periodically the stream's complete state is compacted into a snapshot
//     via the existing Snapshot()/KCSK/KCWN codecs — written to a temp
//     file, fsynced, atomically renamed (magic KCSN, carrying the WAL
//     sequence number it includes) — and the log is rewritten. The daemon
//     runs this off the ingest lock: it serializes an already-published
//     query view and folds the journal at that view's sequence number,
//     preserving any concurrently appended records as the new log tail, so
//     ingest never stalls behind compaction I/O.
//   - On boot, recovery loads the newest valid snapshot, verifies it
//     against the journaled stream metadata (space, k/z, budget, window
//     geometry), replays the log tail beyond the snapshot's sequence
//     number, and tolerates a torn tail by truncating at the first corrupt
//     record: a crash mid-append never takes down the records that were
//     already durable.
//
// The determinism contract is what makes recovery exact rather than
// approximate: replaying the journaled batches over the restored snapshot
// reproduces the pre-crash state bit for bit, so a recovered stream's
// re-snapshot is byte-identical to an uninterrupted run's (enforced by a
// kill-and-recover test that SIGKILLs a real daemon process at random batch
// boundaries). The -fsync flag trades durability for throughput: "always"
// fsyncs before every acknowledgement, "interval" bounds the loss window to
// -fsync-interval, and "never" survives SIGKILL but not power loss. See the
// README's Durability section for the operational details and the daemon's
// typed error-code table.
//
// # Observability
//
// internal/obs is a zero-dependency observability core: wait-free metric
// primitives (atomic counters, gauges and fixed-bucket latency histograms
// with p50/p99 snapshots, rendered in Prometheus text exposition format)
// and a levelled structured key=value logger with per-request IDs. The
// daemon threads it through every layer — per-route HTTP counters and
// latency histograms with slow-request logging (-slow-request), WAL
// append/fsync/compaction/recovery timings via persist.Hooks, and stream
// ingest/eviction/view-publish/cache counters — and serves the result on
// GET /metrics, with per-stream gauges rendered from published query views
// (never the ingest mutex) under an -obs-max-streams cardinality cap.
// internal/obs also carries a span tracer: every daemon request is recorded
// as a span tree (ingest decode/validate/journal/group-commit wait/apply/
// publish, query extraction with cache attribution, plus background
// compaction/recovery/flush traces), joined to inbound W3C traceparent
// headers and echoed as X-Trace-ID. Retention is deterministic 1-in-N head
// sampling (-trace-sample) with forced capture of slow and 5xx requests
// into a bounded ring (-trace-buffer), browsable as JSON span trees at
// /debug/traces on the debug listener; the slow-request warn log carries
// the trace ID and per-stage breakdown inline.
// Profiling (net/http/pprof, expvar) and the trace surface are opt-in on a
// separate -debug-addr listener so they never ride the ingest port. CI
// keeps instrumentation honest: a smoke job boots a daemon, fails on
// missing series, and walks a traced request end to end, and BENCH_obs.json
// gates both the metrics-instrumented and tracer-instrumented ingest paths
// within 5% of stripped builds. See the README's Observability and Tracing
// sections for the metric name table and operational details.
//
// The cmd/ directory provides a clustering CLI, a dataset generator, and a
// driver that reproduces every figure of the paper's evaluation; the
// examples/ directory contains runnable programs for common scenarios
// (examples/durable walks the journal -> crash -> recover loop by hand).
package kcenter
