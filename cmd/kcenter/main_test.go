package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"coresetclustering/internal/dataset"
)

func TestRunGenerateFlow(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-generate", "higgs", "-n", "400", "-k", "5", "-mu", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "radius:") || !strings.Contains(s, "MapReduce k-center") {
		t.Errorf("unexpected output:\n%s", s)
	}
}

// TestRunWorkersFlagDeterminism checks that -workers only changes the
// schedule: the reported radius is identical at 1 and 8 workers.
func TestRunWorkersFlagDeterminism(t *testing.T) {
	radius := func(workers string) string {
		var out bytes.Buffer
		err := run([]string{"-generate", "higgs", "-n", "2000", "-k", "5", "-workers", workers}, &out)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(line, "radius:") {
				return line
			}
		}
		t.Fatalf("no radius line in output:\n%s", out.String())
		return ""
	}
	if seq, par := radius("1"), radius("8"); seq != par {
		t.Errorf("radius differs across workers: %q vs %q", seq, par)
	}
}

func TestRunOutliersFlow(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-generate", "power", "-n", "300", "-k", "4", "-z", "5", "-mu", "2", "-randomized"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "outliers") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestRunStreamingFlow(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-generate", "higgs", "-n", "300", "-k", "4", "-z", "5", "-streaming"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "radius:") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-generate", "higgs", "-n", "300", "-k", "4", "-streaming"}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSVInputAndCenterOutput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	centers := filepath.Join(dir, "centers.csv")
	ds, err := dataset.Generate(dataset.Higgs, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.SaveCSVFile(in, ds); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-input", in, "-k", "3", "-centers", centers}, &out); err != nil {
		t.Fatal(err)
	}
	saved, err := dataset.LoadCSVFile(centers)
	if err != nil {
		t.Fatal(err)
	}
	if len(saved) != 3 {
		t.Errorf("saved centers = %d, want 3", len(saved))
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-k", "3"}, &out); err == nil {
		t.Error("missing input accepted")
	}
	if err := run([]string{"-generate", "higgs", "-input", "x.csv"}, &out); err == nil {
		t.Error("both -input and -generate accepted")
	}
	if err := run([]string{"-generate", "higgs", "-k", "0"}, &out); err == nil {
		t.Error("k=0 accepted")
	}
	if err := run([]string{"-generate", "nope", "-k", "2"}, &out); err == nil {
		t.Error("unknown family accepted")
	}
	if err := run([]string{"-input", "/does/not/exist.csv", "-k", "2"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-bogusflag"}, &out); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-generate", "higgs", "-n", "400", "-k", "5", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var res result
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if res.Algorithm != "mapreduce-kcenter" || res.K != 5 || res.Points != 400 {
		t.Errorf("unexpected JSON result: %+v", res)
	}
	if len(res.Centers) != 5 || res.Radius <= 0 {
		t.Errorf("JSON result missing centers/radius: %+v", res)
	}
	for _, c := range res.Centers {
		if len(c) != res.Dimensions {
			t.Errorf("center dimension %d, want %d", len(c), res.Dimensions)
		}
	}
}

func TestRunJSONStreamingOutliers(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-generate", "power", "-n", "300", "-k", "3", "-z", "4", "-streaming", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var res result
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if res.Algorithm != "streaming-outliers" || res.Z != 4 || res.Budget <= 0 {
		t.Errorf("unexpected JSON result: %+v", res)
	}
	if res.WorkingMemory <= 0 || res.WorkingMemory > res.Budget {
		t.Errorf("working memory %d outside (0, %d]", res.WorkingMemory, res.Budget)
	}
}

// TestRunJSONDeterministicAcrossWorkers: the machine-readable output obeys
// the same determinism contract as the human one.
func TestRunJSONDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers string) string {
		var out bytes.Buffer
		if err := run([]string{"-generate", "higgs", "-n", "1500", "-k", "4", "-workers", workers, "-json"}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if seq, par := render("1"), render("8"); seq != par {
		t.Errorf("JSON output differs across workers:\n%s\nvs\n%s", seq, par)
	}
}
