// Command kcenter clusters a CSV dataset with the coreset-based k-center
// algorithms of this repository: the parallel MapReduce-style algorithm
// (default), the variant with outliers, or the one-pass streaming algorithms.
//
// Usage:
//
//	kcenter -input points.csv -k 20
//	kcenter -input points.csv -k 20 -z 200 -randomized
//	kcenter -input points.csv -k 20 -z 200 -streaming -budget 880
//	kcenter -generate higgs -n 50000 -k 50 -mu 8
//	kcenter -generate higgs -n 50000 -k 50 -json
//
// The tool prints the clustering radius, the per-phase running times, and
// (optionally) writes the selected centers to a CSV file. With -json a single
// machine-readable object is printed instead, for scripting against
// cmd/kcenterd (its ingest endpoint accepts the same [[...], ...] point
// arrays this mode emits).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	kcenter "coresetclustering"
	"coresetclustering/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kcenter:", err)
		os.Exit(1)
	}
}

// result collects everything a run produces, for both output modes. The
// JSON field names are part of the CLI's scripting surface.
type result struct {
	Algorithm        string          `json:"algorithm"`
	Points           int             `json:"points"`
	Dimensions       int             `json:"dimensions"`
	K                int             `json:"k"`
	Z                int             `json:"z,omitempty"`
	Randomized       bool            `json:"randomized,omitempty"`
	Partitions       int             `json:"partitions,omitempty"`
	CoresetUnionSize int             `json:"coresetUnionSize,omitempty"`
	Budget           int             `json:"budget,omitempty"`
	WorkingMemory    int             `json:"workingMemory,omitempty"`
	Radius           float64         `json:"radius"`
	Centers          kcenter.Dataset `json:"centers"`

	coresetTime time.Duration
	finalTime   time.Duration
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kcenter", flag.ContinueOnError)
	var (
		input      = fs.String("input", "", "input CSV file (one point per line)")
		generate   = fs.String("generate", "", "generate a synthetic dataset instead of reading one: higgs, power or wiki")
		n          = fs.Int("n", 10000, "number of points to generate (with -generate)")
		seed       = fs.Int64("seed", 42, "random seed for generation and randomized partitioning")
		k          = fs.Int("k", 10, "number of centers")
		z          = fs.Int("z", 0, "number of outliers to disregard (0 = plain k-center)")
		mu         = fs.Int("mu", 4, "coreset multiplier (per-partition coreset size = mu*(k+z))")
		eps        = fs.Float64("eps", 0, "precision parameter; overrides -mu when positive")
		ell        = fs.Int("ell", 0, "number of partitions (0 = sqrt(n/(k+z)))")
		randomized = fs.Bool("randomized", false, "use randomized partitioning (outlier variant only)")
		workers    = fs.Int("workers", 0, "distance-engine parallelism (0 = one worker per CPU, 1 = sequential; results are identical for any value)")
		spaceName  = fs.String("space", "euclidean", "metric space: euclidean, manhattan, chebyshev, angular or cosine")
		streamFlag = fs.Bool("streaming", false, "use the one-pass streaming algorithm instead of the MapReduce one")
		budget     = fs.Int("budget", 0, "streaming working-memory budget in points (default mu*(k+z))")
		centersOut = fs.String("centers", "", "write the selected centers to this CSV file")
		jsonFlag   = fs.Bool("json", false, "print a single machine-readable JSON object instead of the human report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *k <= 0 {
		return fmt.Errorf("k must be positive, got %d", *k)
	}

	points, err := loadPoints(*input, *generate, *n, *seed)
	if err != nil {
		return err
	}
	space := kcenter.SpaceByName(*spaceName)
	if space == nil {
		return fmt.Errorf("unknown space %q (want one of euclidean, manhattan, chebyshev, angular, cosine)", *spaceName)
	}

	var res *result
	switch {
	case *streamFlag:
		res, err = runStreaming(points, space, *k, *z, *mu, *budget, *workers)
	case *z > 0:
		res, err = runOutliers(points, space, *k, *z, *mu, *eps, *ell, *randomized, *seed, *workers)
	default:
		res, err = runPlain(points, space, *k, *mu, *eps, *ell, *workers)
	}
	if err != nil {
		return err
	}
	res.Points = len(points)
	res.Dimensions = points.Dim()

	if *jsonFlag {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		printHuman(out, res)
	}
	if *centersOut != "" {
		if err := dataset.SaveCSVFile(*centersOut, res.Centers); err != nil {
			return err
		}
		if !*jsonFlag {
			fmt.Fprintf(out, "centers written to %s\n", *centersOut)
		}
	}
	return nil
}

func printHuman(out io.Writer, res *result) {
	fmt.Fprintf(out, "dataset: %d points, %d dimensions\n", res.Points, res.Dimensions)
	switch res.Algorithm {
	case "mapreduce-kcenter":
		fmt.Fprintf(out, "algorithm: MapReduce k-center (%d partitions, coreset union %d points)\n",
			res.Partitions, res.CoresetUnionSize)
		fmt.Fprintf(out, "phase times: coreset %v, final %v\n", res.coresetTime, res.finalTime)
	case "mapreduce-outliers":
		variant := "deterministic"
		if res.Randomized {
			variant = "randomized"
		}
		fmt.Fprintf(out, "algorithm: MapReduce k-center with %d outliers (%s, %d partitions, coreset union %d points)\n",
			res.Z, variant, res.Partitions, res.CoresetUnionSize)
		fmt.Fprintf(out, "phase times: coreset %v, solve %v\n", res.coresetTime, res.finalTime)
	default:
		fmt.Fprintf(out, "algorithm: streaming (budget %d points, working memory %d)\n",
			res.Budget, res.WorkingMemory)
	}
	fmt.Fprintf(out, "centers: %d\n", len(res.Centers))
	fmt.Fprintf(out, "radius:  %.6g\n", res.Radius)
}

func loadPoints(input, generate string, n int, seed int64) (kcenter.Dataset, error) {
	switch {
	case input != "" && generate != "":
		return nil, fmt.Errorf("use either -input or -generate, not both")
	case input != "":
		// Auto-detects the binary flat-buffer layout (datagen -layout flat)
		// and falls back to CSV.
		return dataset.LoadFile(input)
	case generate != "":
		return dataset.Generate(dataset.Name(generate), n, seed)
	default:
		return nil, fmt.Errorf("one of -input or -generate is required")
	}
}

func options(space kcenter.Space, mu int, eps float64, ell int, randomized bool, seed int64, workers int) []kcenter.Option {
	opts := []kcenter.Option{kcenter.WithSpace(space)}
	if eps > 0 {
		opts = append(opts, kcenter.WithPrecision(eps))
	} else if mu > 0 {
		opts = append(opts, kcenter.WithCoresetMultiplier(mu))
	}
	if ell > 0 {
		opts = append(opts, kcenter.WithPartitions(ell))
	}
	if randomized {
		opts = append(opts, kcenter.WithRandomizedPartitioning(seed))
	}
	if workers != 0 {
		opts = append(opts, kcenter.WithWorkers(workers))
	}
	return opts
}

func runPlain(points kcenter.Dataset, space kcenter.Space, k, mu int, eps float64, ell, workers int) (*result, error) {
	res, err := kcenter.Cluster(points, k, options(space, mu, eps, ell, false, 0, workers)...)
	if err != nil {
		return nil, err
	}
	return &result{
		Algorithm:        "mapreduce-kcenter",
		K:                k,
		Partitions:       res.Stats.Partitions,
		CoresetUnionSize: res.Stats.CoresetUnionSize,
		Radius:           res.Radius,
		Centers:          res.Centers,
		coresetTime:      res.Stats.CoresetTime,
		finalTime:        res.Stats.FinalTime,
	}, nil
}

func runOutliers(points kcenter.Dataset, space kcenter.Space, k, z, mu int, eps float64, ell int, randomized bool, seed int64, workers int) (*result, error) {
	res, err := kcenter.ClusterWithOutliers(points, k, z, options(space, mu, eps, ell, randomized, seed, workers)...)
	if err != nil {
		return nil, err
	}
	return &result{
		Algorithm:        "mapreduce-outliers",
		K:                k,
		Z:                z,
		Randomized:       randomized,
		Partitions:       res.Stats.Partitions,
		CoresetUnionSize: res.Stats.CoresetUnionSize,
		Radius:           res.Radius,
		Centers:          res.Centers,
		coresetTime:      res.Stats.CoresetTime,
		finalTime:        res.Stats.FinalTime,
	}, nil
}

func runStreaming(points kcenter.Dataset, space kcenter.Space, k, z, mu, budget, workers int) (*result, error) {
	if budget <= 0 {
		budget = mu * (k + z)
		if budget < k+z+1 {
			budget = k + z + 1
		}
	}
	opts := []kcenter.Option{kcenter.WithSpace(space)}
	if workers != 0 {
		opts = append(opts, kcenter.WithWorkers(workers))
	}
	if z > 0 {
		s, err := kcenter.NewStreamingOutliers(k, z, budget, opts...)
		if err != nil {
			return nil, err
		}
		if err := s.ObserveAll(points); err != nil {
			return nil, err
		}
		centers, err := s.Centers()
		if err != nil {
			return nil, err
		}
		radius, err := kcenter.RadiusExcluding(points, centers, z, opts...)
		if err != nil {
			return nil, err
		}
		return &result{
			Algorithm:     "streaming-outliers",
			K:             k,
			Z:             z,
			Budget:        budget,
			WorkingMemory: s.WorkingMemory(),
			Radius:        radius,
			Centers:       centers,
		}, nil
	}
	s, err := kcenter.NewStreamingKCenter(k, budget, opts...)
	if err != nil {
		return nil, err
	}
	if err := s.ObserveAll(points); err != nil {
		return nil, err
	}
	centers, err := s.Centers()
	if err != nil {
		return nil, err
	}
	radius, err := kcenter.Radius(points, centers, opts...)
	if err != nil {
		return nil, err
	}
	return &result{
		Algorithm:     "streaming-kcenter",
		K:             k,
		Budget:        budget,
		WorkingMemory: s.WorkingMemory(),
		Radius:        radius,
		Centers:       centers,
	}, nil
}
