// Command kcenter clusters a CSV dataset with the coreset-based k-center
// algorithms of this repository: the parallel MapReduce-style algorithm
// (default), the variant with outliers, or the one-pass streaming algorithms.
//
// Usage:
//
//	kcenter -input points.csv -k 20
//	kcenter -input points.csv -k 20 -z 200 -randomized
//	kcenter -input points.csv -k 20 -z 200 -streaming -budget 880
//	kcenter -generate higgs -n 50000 -k 50 -mu 8
//
// The tool prints the clustering radius, the per-phase running times, and
// (optionally) writes the selected centers to a CSV file.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	kcenter "coresetclustering"
	"coresetclustering/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kcenter:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kcenter", flag.ContinueOnError)
	var (
		input      = fs.String("input", "", "input CSV file (one point per line)")
		generate   = fs.String("generate", "", "generate a synthetic dataset instead of reading one: higgs, power or wiki")
		n          = fs.Int("n", 10000, "number of points to generate (with -generate)")
		seed       = fs.Int64("seed", 42, "random seed for generation and randomized partitioning")
		k          = fs.Int("k", 10, "number of centers")
		z          = fs.Int("z", 0, "number of outliers to disregard (0 = plain k-center)")
		mu         = fs.Int("mu", 4, "coreset multiplier (per-partition coreset size = mu*(k+z))")
		eps        = fs.Float64("eps", 0, "precision parameter; overrides -mu when positive")
		ell        = fs.Int("ell", 0, "number of partitions (0 = sqrt(n/(k+z)))")
		randomized = fs.Bool("randomized", false, "use randomized partitioning (outlier variant only)")
		workers    = fs.Int("workers", 0, "distance-engine parallelism (0 = one worker per CPU, 1 = sequential; results are identical for any value)")
		streamFlag = fs.Bool("streaming", false, "use the one-pass streaming algorithm instead of the MapReduce one")
		budget     = fs.Int("budget", 0, "streaming working-memory budget in points (default mu*(k+z))")
		centersOut = fs.String("centers", "", "write the selected centers to this CSV file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *k <= 0 {
		return fmt.Errorf("k must be positive, got %d", *k)
	}

	points, err := loadPoints(*input, *generate, *n, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "dataset: %d points, %d dimensions\n", len(points), points.Dim())

	var centers kcenter.Dataset
	var radius float64
	switch {
	case *streamFlag:
		centers, radius, err = runStreaming(points, *k, *z, *mu, *budget, *workers)
	case *z > 0:
		centers, radius, err = runOutliers(points, *k, *z, *mu, *eps, *ell, *randomized, *seed, *workers, out)
	default:
		centers, radius, err = runPlain(points, *k, *mu, *eps, *ell, *workers, out)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "centers: %d\n", len(centers))
	fmt.Fprintf(out, "radius:  %.6g\n", radius)
	if *centersOut != "" {
		if err := dataset.SaveCSVFile(*centersOut, centers); err != nil {
			return err
		}
		fmt.Fprintf(out, "centers written to %s\n", *centersOut)
	}
	return nil
}

func loadPoints(input, generate string, n int, seed int64) (kcenter.Dataset, error) {
	switch {
	case input != "" && generate != "":
		return nil, fmt.Errorf("use either -input or -generate, not both")
	case input != "":
		return dataset.LoadCSVFile(input)
	case generate != "":
		return dataset.Generate(dataset.Name(generate), n, seed)
	default:
		return nil, fmt.Errorf("one of -input or -generate is required")
	}
}

func options(mu int, eps float64, ell int, randomized bool, seed int64, workers int) []kcenter.Option {
	var opts []kcenter.Option
	if eps > 0 {
		opts = append(opts, kcenter.WithPrecision(eps))
	} else if mu > 0 {
		opts = append(opts, kcenter.WithCoresetMultiplier(mu))
	}
	if ell > 0 {
		opts = append(opts, kcenter.WithPartitions(ell))
	}
	if randomized {
		opts = append(opts, kcenter.WithRandomizedPartitioning(seed))
	}
	if workers != 0 {
		opts = append(opts, kcenter.WithWorkers(workers))
	}
	return opts
}

func runPlain(points kcenter.Dataset, k, mu int, eps float64, ell, workers int, out io.Writer) (kcenter.Dataset, float64, error) {
	res, err := kcenter.Cluster(points, k, options(mu, eps, ell, false, 0, workers)...)
	if err != nil {
		return nil, 0, err
	}
	fmt.Fprintf(out, "algorithm: MapReduce k-center (%d partitions, coreset union %d points)\n",
		res.Stats.Partitions, res.Stats.CoresetUnionSize)
	fmt.Fprintf(out, "phase times: coreset %v, final %v\n", res.Stats.CoresetTime, res.Stats.FinalTime)
	return res.Centers, res.Radius, nil
}

func runOutliers(points kcenter.Dataset, k, z, mu int, eps float64, ell int, randomized bool, seed int64, workers int, out io.Writer) (kcenter.Dataset, float64, error) {
	res, err := kcenter.ClusterWithOutliers(points, k, z, options(mu, eps, ell, randomized, seed, workers)...)
	if err != nil {
		return nil, 0, err
	}
	variant := "deterministic"
	if randomized {
		variant = "randomized"
	}
	fmt.Fprintf(out, "algorithm: MapReduce k-center with %d outliers (%s, %d partitions, coreset union %d points)\n",
		z, variant, res.Stats.Partitions, res.Stats.CoresetUnionSize)
	fmt.Fprintf(out, "phase times: coreset %v, solve %v\n", res.Stats.CoresetTime, res.Stats.FinalTime)
	return res.Centers, res.Radius, nil
}

func runStreaming(points kcenter.Dataset, k, z, mu, budget, workers int) (kcenter.Dataset, float64, error) {
	if budget <= 0 {
		budget = mu * (k + z)
		if budget < k+z+1 {
			budget = k + z + 1
		}
	}
	var opts []kcenter.Option
	if workers != 0 {
		opts = append(opts, kcenter.WithWorkers(workers))
	}
	if z > 0 {
		s, err := kcenter.NewStreamingOutliers(k, z, budget, opts...)
		if err != nil {
			return nil, 0, err
		}
		if err := s.ObserveAll(points); err != nil {
			return nil, 0, err
		}
		centers, err := s.Centers()
		if err != nil {
			return nil, 0, err
		}
		return centers, outlierRadius(points, centers, z), nil
	}
	s, err := kcenter.NewStreamingKCenter(k, budget, opts...)
	if err != nil {
		return nil, 0, err
	}
	if err := s.ObserveAll(points); err != nil {
		return nil, 0, err
	}
	centers, err := s.Centers()
	if err != nil {
		return nil, 0, err
	}
	return centers, plainRadius(points, centers), nil
}

func plainRadius(points, centers kcenter.Dataset) float64 {
	var r float64
	for _, p := range points {
		best := -1.0
		for _, c := range centers {
			d := kcenter.Euclidean(p, c)
			if best < 0 || d < best {
				best = d
			}
		}
		if best > r {
			r = best
		}
	}
	return r
}

func outlierRadius(points, centers kcenter.Dataset, z int) float64 {
	dists := make([]float64, 0, len(points))
	for _, p := range points {
		best := -1.0
		for _, c := range centers {
			d := kcenter.Euclidean(p, c)
			if best < 0 || d < best {
				best = d
			}
		}
		dists = append(dists, best)
	}
	// Drop the z largest.
	for i := 0; i < z && len(dists) > 0; i++ {
		maxIdx := 0
		for j, d := range dists {
			if d > dists[maxIdx] {
				maxIdx = j
			}
		}
		dists[maxIdx] = dists[len(dists)-1]
		dists = dists[:len(dists)-1]
	}
	var r float64
	for _, d := range dists {
		if d > r {
			r = d
		}
	}
	return r
}
