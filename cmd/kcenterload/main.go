// Command kcenterload is a load generator for kcenterd's ingest path: it
// drives concurrent batch ingest over either wire protocol (JSON or the
// binary flat-frame protocol) at a target rate, then reports sustained
// throughput (points/s, batches/s) and ack-latency percentiles (p50, p95,
// p99). The ack latency is end-to-end as a client sees it: request written to
// 200 received, which under -fsync=always includes the WAL write and the
// covering (group-committed) fsync.
//
// Usage:
//
//	kcenterload -addr 127.0.0.1:8080 -proto binary -batch 64 -dim 8 \
//	    -concurrency 8 -duration 10s
//
// With -batches N the run stops after N batches instead of after -duration.
// -rate bounds the aggregate request rate (batches/s across all writers, 0 =
// unthrottled). -window/-window-dur create the target as a sliding-window
// stream and attach timestamps to every batch (coarse wall-clock ticks; under
// high concurrency a few batches may be rejected for arriving behind the
// stream clock — they are counted as rejected, not errors, because per-stream
// clock monotonicity is the daemon's documented contract). -json emits the
// report as a single JSON object on stdout for scripted consumers (CI feeds
// it into the ingest benchmark artifact).
//
// -targets takes a comma-separated list of daemon addresses and spreads the
// load across them round-robin — point it at the shards of a cluster to
// measure direct-ingest throughput, or at a router and shards side by side.
// With more than one target the report carries a per-target ack-latency
// breakdown (batches, points and p50/p95/p99 per address), so a slow or
// overloaded backend is visible immediately instead of hiding inside the
// aggregate percentiles.
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"coresetclustering/internal/metric"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kcenterload:", err)
		os.Exit(1)
	}
}

// loadConfig is the parsed flag set of one run.
type loadConfig struct {
	addr      string
	targets   []string // resolved ingest targets (-targets, or just -addr)
	stream    string
	proto     string
	batch     int
	dim       int
	conc      int
	rate      float64
	batches   int
	duration  time.Duration
	timeout   time.Duration
	k         int
	z         int
	budget    int
	window    int64
	windowDur int64
	jsonOut   bool
}

// report is the run summary; the JSON form is the machine interface CI and
// the benchmark artifact consume.
type report struct {
	Proto         string  `json:"proto"`
	Concurrency   int     `json:"concurrency"`
	BatchSize     int     `json:"batchSize"`
	Dim           int     `json:"dim"`
	Batches       int64   `json:"batches"`
	Points        int64   `json:"points"`
	Rejected      int64   `json:"rejected,omitempty"`
	Errors        int64   `json:"errors,omitempty"`
	FirstError    string  `json:"firstError,omitempty"`
	ElapsedSec    float64 `json:"elapsedSec"`
	PointsPerSec  float64 `json:"pointsPerSec"`
	BatchesPerSec float64 `json:"batchesPerSec"`
	LatencyMsP50  float64 `json:"latencyMsP50"`
	LatencyMsP95  float64 `json:"latencyMsP95"`
	LatencyMsP99  float64 `json:"latencyMsP99"`
	// Slowest holds the slowest acknowledged requests that carried an
	// X-Trace-ID response header, worst first — the exact traces to pull
	// from the daemon's /debug/traces/{id} after a run.
	Slowest []slowSample `json:"slowest,omitempty"`
	// Targets breaks the run down per backend address when -targets named
	// more than one, so a slow backend cannot hide in the aggregate.
	Targets []targetReport `json:"targets,omitempty"`
}

// targetReport is one backend's slice of a multi-target run.
type targetReport struct {
	Target       string  `json:"target"`
	Batches      int64   `json:"batches"`
	Points       int64   `json:"points"`
	Errors       int64   `json:"errors,omitempty"`
	LatencyMsP50 float64 `json:"latencyMsP50"`
	LatencyMsP95 float64 `json:"latencyMsP95"`
	LatencyMsP99 float64 `json:"latencyMsP99"`
}

// slowSample pairs one slow request's ack latency with the daemon-side trace
// that attributes it.
type slowSample struct {
	LatencyMs float64 `json:"latencyMs"`
	TraceID   string  `json:"traceId"`
}

// topSlow bounds how many slow samples each worker keeps and the report prints.
const topSlow = 3

func parseFlags(args []string) (*loadConfig, error) {
	cfg := &loadConfig{}
	fs := flag.NewFlagSet("kcenterload", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "daemon host:port")
	targets := fs.String("targets", "", "comma-separated daemon addresses; overrides -addr and spreads load round-robin with a per-target latency breakdown")
	fs.StringVar(&cfg.stream, "stream", "load", "target stream name")
	fs.StringVar(&cfg.proto, "proto", "binary", "wire protocol: json or binary")
	fs.IntVar(&cfg.batch, "batch", 64, "points per batch")
	fs.IntVar(&cfg.dim, "dim", 8, "point dimensionality")
	fs.IntVar(&cfg.conc, "concurrency", 4, "concurrent writers")
	fs.Float64Var(&cfg.rate, "rate", 0, "target aggregate batches/s (0 = unthrottled)")
	fs.IntVar(&cfg.batches, "batches", 0, "stop after this many batches (0 = run for -duration)")
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "run length when -batches is 0")
	fs.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "per-request timeout")
	fs.IntVar(&cfg.k, "k", 0, "stream ?k= creation parameter (0 = daemon default)")
	fs.IntVar(&cfg.z, "z", 0, "stream ?z= creation parameter")
	fs.IntVar(&cfg.budget, "budget", 0, "stream ?budget= creation parameter (0 = daemon default)")
	fs.Int64Var(&cfg.window, "window", 0, "create a count-window stream of this size and send timestamps")
	fs.Int64Var(&cfg.windowDur, "window-dur", 0, "create a duration-window stream of this span and send timestamps")
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit the report as JSON on stdout")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if cfg.proto != "json" && cfg.proto != "binary" {
		return nil, fmt.Errorf("-proto must be json or binary, got %q", cfg.proto)
	}
	if cfg.batch <= 0 || cfg.dim <= 0 || cfg.conc <= 0 {
		return nil, errors.New("-batch, -dim and -concurrency must be positive")
	}
	if cfg.batches < 0 || cfg.rate < 0 {
		return nil, errors.New("-batches and -rate must be non-negative")
	}
	if cfg.batches == 0 && cfg.duration <= 0 {
		return nil, errors.New("-duration must be positive when -batches is 0")
	}
	if *targets != "" {
		for _, a := range strings.Split(*targets, ",") {
			if a = strings.TrimSpace(a); a != "" {
				cfg.targets = append(cfg.targets, a)
			}
		}
		if len(cfg.targets) == 0 {
			return nil, errors.New("-targets must name at least one address")
		}
	} else {
		cfg.targets = []string{cfg.addr}
	}
	return cfg, nil
}

// ingestURL builds one target's URL; creation parameters ride on every
// request (the daemon only honours them on the creating one).
func (cfg *loadConfig) ingestURL(addr string) string {
	u := "http://" + addr + "/streams/" + cfg.stream + "/ingest"
	q := ""
	add := func(k, v string) {
		if q == "" {
			q = "?"
		} else {
			q += "&"
		}
		q += k + "=" + v
	}
	if cfg.k > 0 {
		add("k", strconv.Itoa(cfg.k))
	}
	if cfg.z > 0 {
		add("z", strconv.Itoa(cfg.z))
	}
	if cfg.budget > 0 {
		add("budget", strconv.Itoa(cfg.budget))
	}
	if cfg.window > 0 {
		add("window", strconv.FormatInt(cfg.window, 10))
	}
	if cfg.windowDur > 0 {
		add("windowDur", strconv.FormatInt(cfg.windowDur, 10))
	}
	return u + q
}

// worker is one writer goroutine's state: a private RNG, a private reusable
// encode buffer and its latency samples.
type worker struct {
	id       int
	cfg      *loadConfig
	urls     []string // one ingest URL per target, cycled round-robin
	next     int
	client   *http.Client
	rng      *rand.Rand
	buf      []byte
	flat     *metric.Flat
	lat      []time.Duration
	slow     []slowSample // worker-local slowest traced acks, worst first
	batches  int64
	points   int64
	rejected int64
	errors   int64
	firstErr string

	// Per-target tallies, indexed like cfg.targets.
	tLat     [][]time.Duration
	tBatches []int64
	tPoints  []int64
	tErrors  []int64
}

// noteSlow keeps the worker's topSlow slowest acks that carried a trace ID
// (insertion into a tiny sorted slice; the hot path cost is one comparison).
func (w *worker) noteSlow(ack time.Duration, traceID string) {
	if traceID == "" {
		return
	}
	ms := float64(ack) / float64(time.Millisecond)
	if len(w.slow) == topSlow && ms <= w.slow[topSlow-1].LatencyMs {
		return
	}
	i := len(w.slow)
	for i > 0 && w.slow[i-1].LatencyMs < ms {
		i--
	}
	w.slow = append(w.slow, slowSample{})
	copy(w.slow[i+1:], w.slow[i:])
	w.slow[i] = slowSample{LatencyMs: ms, TraceID: traceID}
	if len(w.slow) > topSlow {
		w.slow = w.slow[:topSlow]
	}
}

// makeBatch regenerates the worker's flat batch in place.
func (w *worker) makeBatch() {
	w.flat.Reset()
	p := make(metric.Point, w.cfg.dim)
	for i := 0; i < w.cfg.batch; i++ {
		blob := float64(w.rng.Intn(5)) * 100
		for j := range p {
			p[j] = blob + w.rng.NormFloat64()
		}
		w.flat.Append(p)
	}
}

// encode serialises the current batch per the configured protocol, reusing
// the worker's buffer. Window runs stamp every point of the batch with the
// same coarse tick so timestamps are trivially non-decreasing in-batch.
func (w *worker) encode(tick int64) (body []byte, contentType string, err error) {
	w.buf = w.buf[:0]
	if w.cfg.proto == "binary" {
		w.buf = w.flat.AppendFrame(w.buf)
		if w.windowed() {
			// Timestamp trailer: "KCTS" + one big-endian int64 per point
			// (the daemon's binary ingest wire format; see cmd/kcenterd).
			w.buf = append(w.buf, "KCTS"...)
			var scratch [8]byte
			binary.BigEndian.PutUint64(scratch[:], uint64(tick))
			for i := 0; i < w.flat.Len(); i++ {
				w.buf = append(w.buf, scratch[:]...)
			}
		}
		return w.buf, "application/x-kcenter-flat", nil
	}
	req := struct {
		Points     metric.Dataset `json:"points"`
		Timestamps []int64        `json:"timestamps,omitempty"`
	}{Points: w.flat.Dataset()}
	if w.windowed() {
		req.Timestamps = make([]int64, w.flat.Len())
		for i := range req.Timestamps {
			req.Timestamps[i] = tick
		}
	}
	w.buf, err = appendJSON(w.buf, &req)
	return w.buf, "application/json", err
}

func (w *worker) windowed() bool {
	return w.cfg.window > 0 || w.cfg.windowDur > 0
}

// appendJSON marshals v onto dst, reusing its capacity.
func appendJSON(dst []byte, v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return dst, err
	}
	return append(dst, b...), nil
}

// bytesReader avoids a fresh bytes.Reader allocation per request.
type bytesReader struct {
	b []byte
	i int
}

func (r *bytesReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

func run(ctx context.Context, args []string, out io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	urls := make([]string, len(cfg.targets))
	for i, a := range cfg.targets {
		urls[i] = cfg.ingestURL(a)
	}

	var (
		sent     atomic.Int64 // global batch budget when -batches is set
		start    = time.Now()
		deadline time.Time
	)
	if cfg.batches == 0 {
		deadline = start.Add(cfg.duration)
	}
	runCtx := ctx
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}

	workers := make([]*worker, cfg.conc)
	var wg sync.WaitGroup
	for i := range workers {
		w := &worker{
			id:       i,
			cfg:      cfg,
			urls:     urls,
			next:     i, // stagger the round-robin start across workers
			client:   &http.Client{Timeout: cfg.timeout},
			rng:      rand.New(rand.NewSource(int64(i) + 1)),
			tLat:     make([][]time.Duration, len(urls)),
			tBatches: make([]int64, len(urls)),
			tPoints:  make([]int64, len(urls)),
			tErrors:  make([]int64, len(urls)),
		}
		w.flat, err = metric.NewFlat(cfg.dim, cfg.batch)
		if err != nil {
			return err
		}
		workers[i] = w
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.drive(runCtx, cfg, &sent, start)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Merge the per-worker tallies into the report.
	rep := report{
		Proto:       cfg.proto,
		Concurrency: cfg.conc,
		BatchSize:   cfg.batch,
		Dim:         cfg.dim,
		ElapsedSec:  elapsed.Seconds(),
	}
	var all []time.Duration
	var slow []slowSample
	for _, w := range workers {
		rep.Batches += w.batches
		rep.Points += w.points
		rep.Rejected += w.rejected
		rep.Errors += w.errors
		if rep.FirstError == "" {
			rep.FirstError = w.firstErr
		}
		all = append(all, w.lat...)
		slow = append(slow, w.slow...)
	}
	sort.Slice(slow, func(i, j int) bool { return slow[i].LatencyMs > slow[j].LatencyMs })
	if len(slow) > topSlow {
		slow = slow[:topSlow]
	}
	rep.Slowest = slow
	if elapsed > 0 {
		rep.PointsPerSec = float64(rep.Points) / elapsed.Seconds()
		rep.BatchesPerSec = float64(rep.Batches) / elapsed.Seconds()
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.LatencyMsP50 = percentileMs(all, 0.50)
	rep.LatencyMsP95 = percentileMs(all, 0.95)
	rep.LatencyMsP99 = percentileMs(all, 0.99)

	// Per-target breakdown: only worth the noise when targets differ.
	if len(cfg.targets) > 1 {
		for ti, target := range cfg.targets {
			tr := targetReport{Target: target}
			var tlat []time.Duration
			for _, w := range workers {
				tr.Batches += w.tBatches[ti]
				tr.Points += w.tPoints[ti]
				tr.Errors += w.tErrors[ti]
				tlat = append(tlat, w.tLat[ti]...)
			}
			sort.Slice(tlat, func(i, j int) bool { return tlat[i] < tlat[j] })
			tr.LatencyMsP50 = percentileMs(tlat, 0.50)
			tr.LatencyMsP95 = percentileMs(tlat, 0.95)
			tr.LatencyMsP99 = percentileMs(tlat, 0.99)
			rep.Targets = append(rep.Targets, tr)
		}
	}

	if cfg.jsonOut {
		enc := json.NewEncoder(out)
		if err := enc.Encode(&rep); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(out, "proto=%s concurrency=%d batch=%d dim=%d\n",
			rep.Proto, rep.Concurrency, rep.BatchSize, rep.Dim)
		fmt.Fprintf(out, "batches=%d points=%d rejected=%d errors=%d elapsed=%.2fs\n",
			rep.Batches, rep.Points, rep.Rejected, rep.Errors, rep.ElapsedSec)
		fmt.Fprintf(out, "throughput: %.0f points/s (%.1f batches/s)\n",
			rep.PointsPerSec, rep.BatchesPerSec)
		fmt.Fprintf(out, "ack latency: p50=%.2fms p95=%.2fms p99=%.2fms\n",
			rep.LatencyMsP50, rep.LatencyMsP95, rep.LatencyMsP99)
		for i, s := range rep.Slowest {
			fmt.Fprintf(out, "slowest[%d]: %.2fms trace=%s\n", i, s.LatencyMs, s.TraceID)
		}
		for _, tr := range rep.Targets {
			fmt.Fprintf(out, "target %s: batches=%d points=%d errors=%d p50=%.2fms p95=%.2fms p99=%.2fms\n",
				tr.Target, tr.Batches, tr.Points, tr.Errors,
				tr.LatencyMsP50, tr.LatencyMsP95, tr.LatencyMsP99)
		}
	}
	if rep.Batches == 0 {
		if rep.FirstError != "" {
			return fmt.Errorf("no batch was acknowledged: %s", rep.FirstError)
		}
		return errors.New("no batch was acknowledged")
	}
	return nil
}

// drive is one writer's send loop: claim a batch slot (either from the global
// -batches budget or until the deadline), pace it against -rate, send, record.
func (w *worker) drive(ctx context.Context, cfg *loadConfig, sent *atomic.Int64, start time.Time) {
	for {
		if ctx.Err() != nil {
			return
		}
		n := sent.Add(1) - 1 // this batch's global slot, 0-based
		if cfg.batches > 0 && n >= int64(cfg.batches) {
			return
		}
		if cfg.rate > 0 {
			// Slot pacing: batch n is due at start + n/rate, whichever
			// worker claims it.
			due := start.Add(time.Duration(float64(n) / cfg.rate * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return
				}
			}
		}
		tick := int64(time.Since(start) / (10 * time.Millisecond))
		ti := w.next % len(w.urls)
		w.next++
		w.makeBatch()
		body, contentType, err := w.encode(tick)
		if err != nil {
			w.fail(ti, err.Error())
			return
		}
		req, err := http.NewRequestWithContext(ctx, "POST", w.urls[ti], &bytesReader{b: body})
		if err != nil {
			w.fail(ti, err.Error())
			return
		}
		req.Header.Set("Content-Type", contentType)
		req.ContentLength = int64(len(body))
		t0 := time.Now()
		resp, err := w.client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return // deadline hit mid-request, not a failure
			}
			w.fail(ti, err.Error())
			return
		}
		ack := time.Since(t0)
		switch {
		case resp.StatusCode == http.StatusOK:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			w.batches++
			w.points += int64(cfg.batch)
			w.lat = append(w.lat, ack)
			w.tBatches[ti]++
			w.tPoints[ti] += int64(cfg.batch)
			w.tLat[ti] = append(w.tLat[ti], ack)
			w.noteSlow(ack, resp.Header.Get("X-Trace-ID"))
		case resp.StatusCode == http.StatusBadRequest && w.windowed():
			// Expected under concurrent windowed load: this batch's tick
			// lost the race against the stream clock.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			w.rejected++
		default:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			w.fail(ti, fmt.Sprintf("status %d: %s", resp.StatusCode, msg))
			return
		}
	}
}

func (w *worker) fail(ti int, msg string) {
	w.errors++
	w.tErrors[ti]++
	if w.firstErr == "" {
		w.firstErr = msg
	}
}

// percentileMs returns the q-th percentile of sorted samples, in
// milliseconds (nearest-rank).
func percentileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
