package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// fakeDaemon is a minimal kcenterd stand-in: it counts batches per
// Content-Type, sanity-checks each body's shape, and acks with a 200.
type fakeDaemon struct {
	jsonBatches   atomic.Int64
	binaryBatches atomic.Int64
	badBodies     atomic.Int64
}

func (f *fakeDaemon) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch r.Header.Get("Content-Type") {
		case "application/x-kcenter-flat":
			if len(body) < 20 || string(body[:4]) != "KCFL" {
				f.badBodies.Add(1)
				http.Error(w, "bad frame", http.StatusBadRequest)
				return
			}
			f.binaryBatches.Add(1)
		case "application/json":
			var req struct {
				Points     [][]float64 `json:"points"`
				Timestamps []int64     `json:"timestamps"`
			}
			if err := json.Unmarshal(body, &req); err != nil || len(req.Points) == 0 {
				f.badBodies.Add(1)
				http.Error(w, "bad json", http.StatusBadRequest)
				return
			}
			f.jsonBatches.Add(1)
		default:
			f.badBodies.Add(1)
			http.Error(w, "bad content type", http.StatusUnsupportedMediaType)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Trace-ID", "0af7651916cd43dd8448eb211c80319c")
		w.Write([]byte(`{"observed": 1}`))
	})
}

func TestLoadRunBothProtocols(t *testing.T) {
	for _, proto := range []string{"json", "binary"} {
		t.Run(proto, func(t *testing.T) {
			fake := &fakeDaemon{}
			srv := httptest.NewServer(fake.handler())
			t.Cleanup(srv.Close)
			addr := strings.TrimPrefix(srv.URL, "http://")

			var out bytes.Buffer
			err := run(context.Background(), []string{
				"-addr", addr, "-proto", proto, "-batch", "16", "-dim", "3",
				"-concurrency", "3", "-batches", "20", "-json",
			}, &out)
			if err != nil {
				t.Fatalf("run: %v\noutput: %s", err, out.String())
			}
			var rep report
			if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
				t.Fatalf("report is not one JSON object: %v\n%s", err, out.String())
			}
			if rep.Batches != 20 || rep.Points != 20*16 {
				t.Errorf("report: %d batches / %d points, want 20 / 320", rep.Batches, rep.Points)
			}
			if rep.Errors != 0 || rep.PointsPerSec <= 0 {
				t.Errorf("report: errors=%d pointsPerSec=%f", rep.Errors, rep.PointsPerSec)
			}
			if rep.LatencyMsP50 <= 0 || rep.LatencyMsP99 < rep.LatencyMsP50 {
				t.Errorf("latency percentiles inconsistent: p50=%f p99=%f", rep.LatencyMsP50, rep.LatencyMsP99)
			}
			// Every ack carried an X-Trace-ID, so the slowest-traces table
			// must be full and sorted worst-first.
			if len(rep.Slowest) != topSlow {
				t.Errorf("slowest table has %d entries, want %d", len(rep.Slowest), topSlow)
			}
			for i, s := range rep.Slowest {
				if len(s.TraceID) != 32 {
					t.Errorf("slowest[%d] trace ID %q is not 32 hex chars", i, s.TraceID)
				}
				if s.LatencyMs <= 0 {
					t.Errorf("slowest[%d] latency %f not positive", i, s.LatencyMs)
				}
				if i > 0 && s.LatencyMs > rep.Slowest[i-1].LatencyMs {
					t.Errorf("slowest not sorted worst-first: [%d]=%f after [%d]=%f",
						i, s.LatencyMs, i-1, rep.Slowest[i-1].LatencyMs)
				}
			}
			got := fake.jsonBatches.Load() + fake.binaryBatches.Load()
			if got != 20 || fake.badBodies.Load() != 0 {
				t.Errorf("server saw %d good / %d bad batches, want 20 / 0", got, fake.badBodies.Load())
			}
			if proto == "json" && fake.jsonBatches.Load() != 20 {
				t.Errorf("json run sent %d JSON batches", fake.jsonBatches.Load())
			}
			if proto == "binary" && fake.binaryBatches.Load() != 20 {
				t.Errorf("binary run sent %d binary batches", fake.binaryBatches.Load())
			}
		})
	}
}

func TestLoadRunRateBoundsThroughput(t *testing.T) {
	fake := &fakeDaemon{}
	srv := httptest.NewServer(fake.handler())
	t.Cleanup(srv.Close)
	addr := strings.TrimPrefix(srv.URL, "http://")

	var out bytes.Buffer
	// 20 batches at 100 batches/s must take ~200ms.
	err := run(context.Background(), []string{
		"-addr", addr, "-batches", "20", "-rate", "100",
		"-concurrency", "2", "-batch", "4", "-dim", "2", "-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.ElapsedSec < 0.15 {
		t.Errorf("rate-limited run finished in %.3fs, want ≥0.15s", rep.ElapsedSec)
	}
	if rep.BatchesPerSec > 140 {
		t.Errorf("rate-limited run averaged %.1f batches/s, want ≤~100", rep.BatchesPerSec)
	}
}

func TestLoadFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-proto", "msgpack"},
		{"-batch", "0"},
		{"-concurrency", "-1"},
		{"-rate", "-5"},
		{"-batches", "0", "-duration", "0s"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted invalid flags", args)
		}
	}
}

func TestLoadReportsServerError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom","code":"internal"}`, http.StatusInternalServerError)
	}))
	t.Cleanup(srv.Close)
	addr := strings.TrimPrefix(srv.URL, "http://")
	var out bytes.Buffer
	err := run(context.Background(), []string{"-addr", addr, "-batches", "3", "-concurrency", "1"}, &out)
	if err == nil || !strings.Contains(err.Error(), "status 500") {
		t.Fatalf("run against a 500-ing server returned %v, want status-500 error", err)
	}
}

// TestLoadWindowedTrailer checks the windowed binary encoding carries the
// KCTS trailer with one timestamp per point.
func TestLoadWindowedTrailer(t *testing.T) {
	var sawTrailer atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		// 16 points of dim 2: 20-byte header + 256 payload + 4 magic + 128 ts.
		if len(body) == 20+16*2*8+4+16*8 && string(body[20+256:20+260]) == "KCTS" {
			sawTrailer.Store(true)
		}
		w.Write([]byte(`{}`))
	}))
	t.Cleanup(srv.Close)
	addr := strings.TrimPrefix(srv.URL, "http://")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", addr, "-proto", "binary", "-window", "100",
		"-batches", "2", "-batch", "16", "-dim", "2", "-concurrency", "1", "-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !sawTrailer.Load() {
		t.Error("windowed binary batches carried no KCTS trailer")
	}
}
