package main

import (
	"context"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"coresetclustering/internal/obs"
	"coresetclustering/internal/persist"
)

// daemonMetrics is the daemon's process-lifetime metric set, all under the
// kcenterd_ prefix. Recording is wait-free (see internal/obs), so every
// counter below is safe to bump from the ingest hot path, the persistence
// layer's critical sections and concurrent HTTP handlers alike. A nil
// *daemonMetrics disables instrumentation entirely — every method is
// nil-safe — which is also how the benchmark measures the uninstrumented
// baseline.
type daemonMetrics struct {
	reg   *obs.Registry
	start time.Time

	// HTTP surface.
	httpRequests *obs.CounterVec   // route, method, status
	httpDuration *obs.HistogramVec // route
	httpSlow     *obs.Counter
	httpInFlight *obs.Gauge

	// Stream lifecycle and query path.
	ingestPoints       *obs.Counter
	ingestBatches      *obs.Counter
	ingestBinaryBytes  *obs.Counter
	ingestBinaryPoints *obs.Counter
	evictedBuckets     *obs.Counter
	evictedPoints      *obs.Counter
	viewPublishes      *obs.Counter
	cacheHits          *obs.Counter
	cacheMisses        *obs.Counter
	streamsFailed      *obs.Counter

	// Persistence layer, fed by persist.Hooks.
	walAppends       *obs.CounterVec // op
	walAppendBytes   *obs.Counter
	walAppendDur     *obs.Histogram
	walFsyncs        *obs.Counter
	walFsyncDur      *obs.Histogram
	walGroupCommits  *obs.Counter
	walGroupDepth    *obs.Histogram
	walGroupDur      *obs.Histogram
	walFlushErrors   *obs.Counter
	walTornTails     *obs.Counter
	walTruncatedB    *obs.Counter
	compactions      *obs.Counter
	compactionDur    *obs.Histogram
	compactionFolded *obs.Counter
	recoveries       *obs.Counter
	recoveryDur      *obs.Histogram
	recoveryPoints   *obs.Counter
}

func newDaemonMetrics() *daemonMetrics {
	r := obs.NewRegistry()
	return &daemonMetrics{
		reg:   r,
		start: time.Now(),

		httpRequests: r.CounterVec("kcenterd_http_requests_total",
			"HTTP requests served, by route pattern, method and status code.",
			"route", "method", "status"),
		httpDuration: r.HistogramVec("kcenterd_http_request_duration_seconds",
			"HTTP request latency by route pattern.",
			obs.DefDurationBuckets, "route"),
		httpSlow: r.Counter("kcenterd_http_slow_requests_total",
			"Requests slower than the -slow-request threshold."),
		httpInFlight: r.Gauge("kcenterd_http_in_flight_requests",
			"Requests currently being handled."),

		ingestPoints: r.Counter("kcenterd_ingest_points_total",
			"Points acknowledged across all streams."),
		ingestBatches: r.Counter("kcenterd_ingest_batches_total",
			"Ingest batches acknowledged across all streams."),
		ingestBinaryBytes: r.Counter("kcenterd_ingest_binary_bytes_total",
			"Request-body bytes of acknowledged binary (flat-frame) ingest batches."),
		ingestBinaryPoints: r.Counter("kcenterd_ingest_binary_points_total",
			"Points acknowledged via the binary ingest protocol."),
		evictedBuckets: r.Counter("kcenterd_stream_evicted_buckets_total",
			"Window buckets evicted across all streams."),
		evictedPoints: r.Counter("kcenterd_stream_evicted_points_total",
			"Stream points inside evicted window buckets."),
		viewPublishes: r.Counter("kcenterd_view_publishes_total",
			"Immutable query views published (one per acknowledged mutation)."),
		cacheHits: r.Counter("kcenterd_extraction_cache_hits_total",
			"Centers queries answered from a view's memoised extraction."),
		cacheMisses: r.Counter("kcenterd_extraction_cache_misses_total",
			"Centers queries that ran a fresh extraction."),
		streamsFailed: r.Counter("kcenterd_streams_failed_total",
			"Streams set aside after diverging from their journal."),

		walAppends: r.CounterVec("kcenterd_wal_appends_total",
			"WAL records appended, by op.", "op"),
		walAppendBytes: r.Counter("kcenterd_wal_append_bytes_total",
			"Framed bytes appended to WALs."),
		walAppendDur: r.Histogram("kcenterd_wal_append_duration_seconds",
			"WAL append latency (fsync included under -fsync=always).",
			obs.DefDurationBuckets),
		walFsyncs: r.Counter("kcenterd_wal_fsyncs_total",
			"Successful WAL fsyncs."),
		walFsyncDur: r.Histogram("kcenterd_wal_fsync_duration_seconds",
			"WAL fsync latency.", obs.DefDurationBuckets),
		walGroupCommits: r.Counter("kcenterd_wal_group_commits_total",
			"Group-commit cycles (one shared fsync pass each)."),
		walGroupDepth: r.Histogram("kcenterd_wal_group_commit_depth",
			"Appends coalesced per group-commit cycle.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128}),
		walGroupDur: r.Histogram("kcenterd_wal_group_commit_duration_seconds",
			"Group-commit cycle latency (fsync plus ack fan-out).",
			obs.DefDurationBuckets),
		walFlushErrors: r.Counter("kcenterd_wal_flush_errors_total",
			"Background flusher fsync failures (the log stays dirty and is retried)."),
		walTornTails: r.Counter("kcenterd_wal_torn_tails_total",
			"WALs found ending in a defective record during recovery."),
		walTruncatedB: r.Counter("kcenterd_wal_truncated_bytes_total",
			"Bytes discarded when truncating torn WAL tails."),
		compactions: r.Counter("kcenterd_compactions_total",
			"Snapshot compactions completed."),
		compactionDur: r.Histogram("kcenterd_compaction_duration_seconds",
			"Snapshot compaction latency.", obs.DefDurationBuckets),
		compactionFolded: r.Counter("kcenterd_compaction_folded_records_total",
			"Journal records folded into snapshots by compaction."),
		recoveries: r.Counter("kcenterd_recoveries_total",
			"Streams whose durable state was decoded at boot."),
		recoveryDur: r.Histogram("kcenterd_recovery_duration_seconds",
			"Boot-time per-stream decode latency (snapshot + WAL scan).",
			obs.DefDurationBuckets),
		recoveryPoints: r.Counter("kcenterd_recovery_points_replayed_total",
			"Points replayed from WAL tails at boot."),
	}
}

// persistHooks adapts the metric set to the persistence layer's
// instrumentation seam. A nil receiver returns the zero Hooks, leaving the
// persistence hot paths on their uninstrumented branch.
func (m *daemonMetrics) persistHooks() persist.Hooks {
	if m == nil {
		return persist.Hooks{}
	}
	return persist.Hooks{
		AppendDone: func(op persist.Op, bytes int, d time.Duration) {
			m.walAppends.With(op.String()).Add(1)
			m.walAppendBytes.Add(int64(bytes))
			m.walAppendDur.ObserveDuration(d)
		},
		FsyncDone: func(d time.Duration) {
			m.walFsyncs.Add(1)
			m.walFsyncDur.ObserveDuration(d)
		},
		GroupCommitDone: func(groupSize int, d time.Duration) {
			m.walGroupCommits.Add(1)
			m.walGroupDepth.Observe(float64(groupSize))
			m.walGroupDur.ObserveDuration(d)
		},
		FlushError: func(error) { m.walFlushErrors.Add(1) },
		CompactionDone: func(d time.Duration, folded int) {
			m.compactions.Add(1)
			m.compactionDur.ObserveDuration(d)
			m.compactionFolded.Add(int64(folded))
		},
		TornTail: func(truncated int64) {
			m.walTornTails.Add(1)
			m.walTruncatedB.Add(truncated)
		},
		RecoveryDone: func(name string, d time.Duration, records int, points int64) {
			m.recoveries.Add(1)
			m.recoveryDur.ObserveDuration(d)
			m.recoveryPoints.Add(points)
		},
	}
}

// persistHooks is the full instrumentation seam handed to the persistence
// layer: the metric set's hooks plus, when tracing is enabled, the
// trace-attribution callbacks (group-commit wait as a span on the waiting
// request's trace, flusher cycles as sampled background traces).
func (s *server) persistHooks() persist.Hooks {
	hooks := s.metrics.persistHooks()
	if t := s.tracer; t != nil {
		hooks.AppendWait = func(ctx context.Context, op persist.Op, wait time.Duration) {
			obs.RecordSpan(ctx, "wal.wait", wait, "op", op.String())
		}
		hooks.FlushCycleDone = func(d time.Duration, flushed int) {
			t.RecordBackground("wal.flush", d, "logs", strconv.Itoa(flushed))
		}
	}
	return hooks
}

// statusWriter records the status code a handler sent (200 when the handler
// wrote a body without an explicit WriteHeader).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// requestIDOK bounds what the daemon accepts as a caller-supplied
// X-Request-ID: short, printable, no spaces — anything else is replaced so a
// hostile header cannot inject log fields or unbounded bytes into every line.
func requestIDOK(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '=' {
			return false
		}
	}
	return true
}

// withObs wraps the route mux with the daemon's request instrumentation:
// every request gets an X-Request-ID (the caller's, when well-formed, so IDs
// propagate through shard fan-outs; a fresh one otherwise) echoed on the
// response, a root span honoring an inbound traceparent header (the trace ID
// echoed as X-Trace-ID, so a load run or a router fan-out can pull the exact
// trace from /debug/traces/{id}), per-route counters and latency histograms
// keyed by the mux pattern that matched, and a warn-level log line — now
// carrying the trace ID and the per-stage breakdown — when the request
// exceeds the -slow-request threshold. Runs inside MaxBytesHandler so the
// mux populates r.Pattern on the very request this wrapper holds.
func (s *server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-ID")
		if !requestIDOK(reqID) {
			reqID = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)
		m, t := s.metrics, s.tracer
		if m == nil && t == nil {
			next.ServeHTTP(w, r)
			return
		}
		var root *obs.Span
		if t != nil {
			var ctx context.Context
			ctx, root = t.StartRoot(r.Context(), r.Method, r.Header.Get("traceparent"))
			w.Header().Set("X-Trace-ID", root.TraceID())
			r = r.WithContext(ctx)
		}
		if m != nil {
			m.httpInFlight.Add(1)
			defer m.httpInFlight.Add(-1)
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		route := r.Pattern // set in place by the mux while routing
		if route == "" {
			route = "unmatched"
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		slow := s.cfg.slowReq > 0 && elapsed >= s.cfg.slowReq
		if root != nil {
			// A matched mux pattern already carries the method ("POST /x");
			// only the "unmatched" fallback needs it prefixed.
			if strings.Contains(route, " ") {
				root.SetName(route)
			} else {
				root.SetName(r.Method + " " + route)
			}
			root.SetAttr("status", strconv.Itoa(status))
			root.SetAttr("requestId", reqID)
			if status >= http.StatusInternalServerError {
				root.Force("error")
			}
			if slow {
				root.Force("slow")
			}
			root.End()
		}
		if m != nil {
			m.httpRequests.With(route, r.Method, fmt.Sprintf("%d", status)).Add(1)
			m.httpDuration.With(route).ObserveDuration(elapsed)
		}
		if slow {
			if m != nil {
				m.httpSlow.Add(1)
			}
			s.logger.Warn("slow request",
				"requestId", reqID, "traceId", root.TraceID(),
				"method", r.Method, "route", route,
				"status", status, "duration", elapsed,
				"stages", root.Breakdown())
		} else if s.logger.Enabled(obs.LevelDebug) {
			s.logger.Debug("request",
				"requestId", reqID, "method", r.Method, "route", route,
				"status", status, "duration", elapsed)
		}
	})
}

// handleMetrics serves the Prometheus text exposition: the process-lifetime
// registry first, then scrape-time series (uptime, stream census, per-stream
// gauges) rendered into a throwaway registry so they share the golden-tested
// formatter. Per-stream series come exclusively from published query views
// and atomic counters — scraping never touches a stream's ingest mutex, so
// /metrics stays responsive while ingest, fsyncs or compactions are in
// flight. Per-stream cardinality is capped at -obs-max-streams series
// (alphabetically first names win, deterministically); the number omitted is
// itself exported.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	if m == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	if r.Method == http.MethodHead {
		// Probes want the headers, not a full render of every series.
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		return
	}
	s.mu.RLock()
	names := make([]string, 0, len(s.streams))
	for name := range s.streams {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	total := len(names)
	omitted := 0
	if max := s.cfg.obsMaxStreams; max >= 0 && total > max {
		omitted = total - max
		names = names[:max]
	}

	scrape := obs.NewRegistry()
	scrape.Gauge("kcenterd_uptime_seconds",
		"Seconds since the daemon started.").Set(time.Since(m.start).Seconds())
	scrape.Gauge("kcenterd_streams",
		"Streams currently hosted.").Set(float64(total))
	s.failedMu.Lock()
	failedNow := len(s.failed)
	s.failedMu.Unlock()
	scrape.Gauge("kcenterd_streams_failed_current",
		"Streams currently set aside as failed.").Set(float64(failedNow))
	scrape.Gauge("kcenterd_streams_omitted",
		"Streams beyond the -obs-max-streams per-stream series cap.").Set(float64(omitted))

	observed := scrape.GaugeVec("kcenterd_stream_observed_points",
		"Lifetime points observed by the stream.", "stream")
	working := scrape.GaugeVec("kcenterd_stream_working_memory_points",
		"Points currently retained by the stream's sketch.", "stream")
	version := scrape.GaugeVec("kcenterd_stream_version",
		"Mutations applied to the stream in-process.", "stream")
	livePts := scrape.GaugeVec("kcenterd_stream_live_points",
		"Points summarised by the live window (window streams only).", "stream")
	for _, name := range names {
		st, ok := s.lookup(name)
		if !ok {
			continue
		}
		v := st.view.Load()
		observed.With(name).Set(float64(v.observed))
		working.With(name).Set(float64(v.workingMemory))
		version.With(name).Set(float64(v.version))
		if v.window != nil {
			livePts.With(name).Set(float64(v.window.LivePoints))
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := m.reg.WritePrometheus(w); err != nil {
		return // client went away; nothing sensible left to send
	}
	if err := scrape.WritePrometheus(w); err != nil && s.logger.Enabled(obs.LevelDebug) {
		s.logger.Debug("metrics scrape write failed", "error", err)
	}
}

// debugRoutes builds the opt-in -debug-addr surface: pprof, expvar and the
// retained-trace endpoints on their own mux, so profiling and trace data are
// reachable only via the separate debug listener, never on the ingest port.
func debugRoutes(t *obs.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) { handleTraceList(w, r, t) })
	mux.HandleFunc("GET /debug/traces/{id}", func(w http.ResponseWriter, r *http.Request) { handleTraceByID(w, r, t) })
	return mux
}

// handleTraceList serves the retained traces newest first, optionally
// filtered by ?route= (substring of the trace name, i.e. "METHOD /pattern")
// and ?minDur= (a Go duration; traces at least this long).
func handleTraceList(w http.ResponseWriter, r *http.Request, t *obs.Tracer) {
	if t == nil {
		httpError(w, http.StatusNotFound, "tracing_disabled", fmt.Errorf("tracing is disabled (-trace-buffer 0)"))
		return
	}
	var minDur time.Duration
	if v := r.URL.Query().Get("minDur"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad_min_dur", fmt.Errorf("minDur: %w", err))
			return
		}
		minDur = d
	}
	route := r.URL.Query().Get("route")
	out := make([]obs.TraceSummary, 0, 32)
	for _, tr := range t.Recent() {
		if route != "" && !strings.Contains(tr.Name(), route) {
			continue
		}
		if tr.Duration() < minDur {
			continue
		}
		out = append(out, tr.Summary())
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": out})
}

// handleTraceByID serves one retained trace's full span tree.
func handleTraceByID(w http.ResponseWriter, r *http.Request, t *obs.Tracer) {
	if t == nil {
		httpError(w, http.StatusNotFound, "tracing_disabled", fmt.Errorf("tracing is disabled (-trace-buffer 0)"))
		return
	}
	tr := t.Find(r.PathValue("id"))
	if tr == nil {
		httpError(w, http.StatusNotFound, "trace_not_found", fmt.Errorf("no retained trace %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, tr.Detail())
}

// markFailed records a stream set aside as failed, for /healthz and /streams.
func (s *server) markFailed(name, reason string) {
	s.failedMu.Lock()
	if s.failed == nil {
		s.failed = make(map[string]string)
	}
	s.failed[name] = reason
	s.failedMu.Unlock()
	if m := s.metrics; m != nil {
		m.streamsFailed.Add(1)
	}
}

// clearFailed forgets a failed name once it is recreated or restored.
func (s *server) clearFailed(name string) {
	s.failedMu.Lock()
	delete(s.failed, name)
	s.failedMu.Unlock()
}

// failedStreams returns a point-in-time copy of the failed-stream table.
func (s *server) failedStreams() map[string]string {
	s.failedMu.Lock()
	defer s.failedMu.Unlock()
	if len(s.failed) == 0 {
		return nil
	}
	out := make(map[string]string, len(s.failed))
	for k, v := range s.failed {
		out[k] = v
	}
	return out
}
