// Command kcenterd is a sharded-ingest daemon for streaming k-center
// clustering: it hosts named streams, each backed by the library's
// fixed-memory streaming clusterer, and exposes the sketch subsystem over
// HTTP so that independent shard daemons can snapshot their state and a
// coordinator can merge the sketches into a global summary.
//
// Endpoints:
//
//	GET    /healthz                      liveness probe (503 + failed-stream list when degraded)
//	GET    /metrics                      Prometheus text exposition (global + per-stream series)
//	GET    /streams                      list streams and their stats (including failed ones)
//	GET    /streams/{name}/stats         introspect one stream (counts, memory, window, durability)
//	POST   /streams/{name}/points        batch ingest, JSON or binary (negotiated by Content-Type)
//	POST   /streams/{name}/ingest        alias for /points (same negotiated handler)
//	POST   /streams/{name}/advance       move a window stream's clock: {"to": ts}
//	GET    /streams/{name}/centers       extract the current k centers
//	POST   /streams/{name}/snapshot      serialize the stream (octet-stream)
//	POST   /streams/{name}/restore       recreate the stream from a sketch body
//	DELETE /streams/{name}               drop the stream
//	POST   /merge                        merge base64 sketches {"sketches": [...]}
//
// Streams are created on first ingest with the daemon's default parameters;
// ?k= &z= &budget= query parameters on that first request override them.
// ?window=N and/or ?windowDur=D make the stream a sliding-window one: it
// summarises only the last N points and/or the last D timestamp ticks, with
// whole buckets evicted automatically as they age out. Window streams accept
// an optional "timestamps" array alongside "points" (one non-negative,
// non-decreasing int64 per point, in the same caller-defined units as
// ?windowDur=); batches without timestamps reuse the newest observed one.
// Snapshots of window streams carry the full window state (magic KCWN) and
// restore to live window streams; window sketches cannot be merged.
//
// Ingest speaks two wire encodings, negotiated by Content-Type. JSON
// ({"points": [[...], ...], "timestamps": [...]}) is the default; a
// Content-Type of application/x-kcenter-flat switches the body to the KCFL
// binary flat frame — a 20-byte header (magic, version, dimension, count)
// followed by big-endian float64 coordinates, optionally trailed by a KCTS
// block of per-point int64 timestamps for window streams. A .kcf dataset
// file is a valid frame body verbatim. Binary frames decode directly into
// the clusterer's flat point layout with no per-point allocation and are
// validated as strictly as JSON (a malformed frame is a 400 invalid_frame,
// an unrecognised Content-Type a 415 unsupported_media_type); the two
// encodings are state-equivalent — the same points yield byte-identical
// snapshots either way. cmd/kcenterload generates load in both encodings
// and reports measured throughput and ack latency.
//
// With -persist-dir set, every stream is durable: stream creation, ingest
// batches and clock advances are journaled to a per-stream write-ahead log
// (fsynced per -fsync) before they are acknowledged — under -fsync=always,
// concurrent appends coalesce into shared group-commit fsyncs (-group-commit,
// on by default) without weakening the guarantee — the stream state is
// periodically compacted into a snapshot via the sketch codecs (-compact-every
// journaled records), and on boot the daemon recovers every stream by loading
// its newest valid snapshot and replaying the log tail — a recovered stream's
// re-snapshot is byte-identical to an uninterrupted run's. DELETE tombstones
// the stream's directory; restore replaces it atomically. Per-stream recovery
// and journal statistics are surfaced on GET /streams/{name}/stats.
//
// Error responses are typed: {"error": ..., "code": ...} where code is a
// stable machine-readable identifier (invalid_point, dimension_mismatch,
// invalid_timestamps, unknown_stream, invalid_frame, unsupported_media_type,
// body_too_large, ...). Batches are
// validated before any point is applied, so a rejected batch (NaN/Inf
// coordinates, ragged or mismatched dimensions, bad timestamps) never
// perturbs stream state. JSON bodies are decoded strictly: unknown fields
// and trailing data are invalid_json, and a body over -max-body bytes is a
// 413 body_too_large.
//
// Writes to one stream (ingest, advance) serialise on the stream's ingest
// mutex, while reads are wait-free: every acknowledged write publishes an
// immutable copy-on-write query view (cloning the clusterer costs O(budget)
// for insertion-only streams and O(log window) shared bucket pointers for
// window streams), and GET /centers, /stats and /snapshot answer from the
// newest published view without ever touching the ingest mutex — a query
// never stalls behind an in-flight batch, fsync or compaction. Reads are
// snapshot-isolated: a reader always observes the state exactly as of some
// acknowledged batch boundary (the view's "version", a per-process counter of
// applied mutations surfaced in stats), never a torn mid-batch state. Each
// view memoises its extraction and snapshot, so repeated queries at an
// unchanged version are cache hits — byte-identical to a fresh extraction,
// with hit/miss counters in stats — and the cache dies with the view, so
// invalidation is automatic. Distinct streams ingest in parallel.
// SIGINT/SIGTERM trigger a graceful shutdown that drains in-flight requests
// and flushes the journals.
//
// The daemon is observable end to end. Every request carries an
// X-Request-ID (assigned if the client did not send a well-formed one, and
// echoed back) that tags its structured log lines; logs are levelled
// key=value records on stderr, filtered by -log-level, and any request
// slower than -slow-request (default 1s, 0 disables) is logged at warn
// with its route, status and duration. GET /metrics serves Prometheus
// text exposition: per-route×status HTTP counters and latency histograms,
// ingest/eviction/view-publish/cache counters, WAL append/fsync/compaction/
// recovery timings, plus per-stream gauges (observed points, working
// memory, version) rendered from published query views — the scrape never
// touches an ingest mutex. Per-stream series are capped at -obs-max-streams
// streams (alphabetically; a kcenterd_streams_omitted gauge counts the
// rest).
//
// Every request is also traced as a span tree — decode, validate, journal,
// group-commit wait, apply and publish on the ingest path; extraction with
// cache attribution on queries; background traces for compaction, recovery
// and the interval flusher. An inbound W3C traceparent header joins the
// caller's trace and every response echoes its trace ID as X-Trace-ID.
// Traces are recorded always but retained selectively: a deterministic 1 in
// -trace-sample requests (default 16), plus every slow or 5xx request
// regardless of sampling, kept in a ring of -trace-buffer traces (default
// 256; 0 disables tracing). The slow-request warn log carries the trace ID
// and per-stage breakdown (stages="decode=… journal=…"), and retained
// traces are served as JSON at /debug/traces (list, ?route= and ?minDur=
// filters) and /debug/traces/{id} (full span tree) on the debug listener.
//
// -debug-addr starts a separate listener with net/http/pprof, expvar and
// the /debug/traces surface; all three are off unless that flag is set and
// never ride the ingest port.
//
// Usage:
//
//	kcenterd -addr :8080 -k 20 -budget 320
//	kcenterd -addr :8080 -k 20 -z 100 -distance manhattan
//	kcenterd -addr :8080 -persist-dir /var/lib/kcenterd -fsync always
//	kcenterd -addr :8080 -debug-addr 127.0.0.1:6060 -slow-request 250ms -log-level debug
package main

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	kcenter "coresetclustering"
	"coresetclustering/internal/metric"
	"coresetclustering/internal/obs"
	"coresetclustering/internal/persist"
	"coresetclustering/internal/sketch"
)

// Stable machine-readable error codes carried by every error response.
const (
	codeInvalidJSON       = "invalid_json"
	codeEmptyBatch        = "empty_batch"
	codeInvalidPoint      = "invalid_point"
	codeDimensionMismatch = "dimension_mismatch"
	codeInvalidParam      = "invalid_param"
	codeInvalidTimestamps = "invalid_timestamps"
	codeNotWindowed       = "not_windowed"
	codeUnknownStream     = "unknown_stream"
	codeStreamGone        = "stream_gone"
	codeStreamFailed      = "stream_failed"
	codeBadSketch         = "bad_sketch"
	codeEmptyStream       = "empty_stream"
	codeBodyTooLarge      = "body_too_large"
	codeInvalidFrame      = "invalid_frame"
	codeUnsupportedMedia  = "unsupported_media_type"
	codeInternal          = "internal"
)

// maxBodyBytes is the default bound on every request body (batches and
// sketches alike); -max-body overrides it.
const maxBodyBytes = 64 << 20

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "kcenterd:", err)
		os.Exit(1)
	}
}

// config carries the daemon defaults applied to implicitly created streams,
// plus the observability knobs.
type config struct {
	k             int
	z             int
	budget        int
	workers       int
	dist          string
	maxBody       int64         // request-body cap in bytes (0 = maxBodyBytes)
	fsync         string        // fsync mode name, surfaced in durability stats
	slowReq       time.Duration // slow-request log threshold (0 = disabled)
	obsMaxStreams int           // per-stream /metrics series cap (0 = default, <0 = unlimited)
	traceSample   int           // head-sample 1 in N requests (0 = default 16)
	traceBuffer   int           // retained completed traces (0 = default 256, <0 = tracing off)
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kcenterd", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		k             = fs.Int("k", 10, "default number of centers for new streams")
		z             = fs.Int("z", 0, "default number of outliers for new streams (0 = plain k-center)")
		budget        = fs.Int("budget", 0, "default working-memory budget in points (0 = 8*(k+z))")
		workers       = fs.Int("workers", 0, "distance-engine parallelism for extraction (0 = one per CPU)")
		dist          = fs.String("distance", "euclidean", fmt.Sprintf("metric space %v", sketch.DistanceNames()))
		maxBody       = fs.Int64("max-body", maxBodyBytes, "request body size cap in bytes")
		persistDir    = fs.String("persist-dir", "", "root directory for per-stream durability (WAL + snapshots); empty = in-memory only")
		fsyncMode     = fs.String("fsync", "always", "WAL flush policy: always, interval or never")
		fsyncInterval = fs.Duration("fsync-interval", 100*time.Millisecond, "flush period under -fsync=interval")
		compactEvery  = fs.Int("compact-every", 1024, "journaled records per stream that trigger snapshot compaction (negative disables)")
		groupCommit   = fs.Bool("group-commit", true, "coalesce concurrent WAL appends into shared fsyncs under -fsync=always")
		logLevel      = fs.String("log-level", "info", "log verbosity: debug, info, warn or error")
		slowReq       = fs.Duration("slow-request", time.Second, "log requests slower than this at warn level (0 disables)")
		debugAddr     = fs.String("debug-addr", "", "separate listen address for pprof, expvar and /debug/traces (empty = disabled)")
		obsMaxStreams = fs.Int("obs-max-streams", 64, "per-stream series cap on /metrics (negative = unlimited)")
		traceSample   = fs.Int("trace-sample", 16, "head-sample 1 in N requests for tracing (slow and errored requests are always captured)")
		traceBuffer   = fs.Int("trace-buffer", 256, "completed traces retained for /debug/traces (0 disables tracing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, _, err := sketch.DistanceByName(*dist); err != nil {
		return err
	}
	mode, err := persist.ParseFsyncMode(*fsyncMode)
	if err != nil {
		return err
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	if *maxBody <= 0 {
		return fmt.Errorf("-max-body must be positive, got %d", *maxBody)
	}
	if *slowReq < 0 {
		return fmt.Errorf("-slow-request must be non-negative, got %v", *slowReq)
	}
	if *traceSample < 1 {
		return fmt.Errorf("-trace-sample must be at least 1, got %d", *traceSample)
	}
	if *traceBuffer < 0 {
		return fmt.Errorf("-trace-buffer must be non-negative, got %d", *traceBuffer)
	}
	buffer := *traceBuffer
	if buffer == 0 {
		buffer = -1 // flag 0 means "disabled"; config 0 means "default"
	}
	logger := obs.NewLogger(out, level)
	srv := newServer(config{
		k: *k, z: *z, budget: *budget, workers: *workers, dist: *dist,
		maxBody: *maxBody, fsync: mode.String(),
		slowReq: *slowReq, obsMaxStreams: *obsMaxStreams,
		traceSample: *traceSample, traceBuffer: buffer,
	})
	srv.logger = logger

	if *persistDir != "" {
		store, err := persist.Open(*persistDir, persist.Options{
			Fsync:         mode,
			FsyncInterval: *fsyncInterval,
			CompactEvery:  *compactEvery,
			GroupCommit:   *groupCommit,
			Hooks:         srv.persistHooks(),
		})
		if err != nil {
			return err
		}
		defer func() {
			if err := store.Close(); err != nil {
				logger.Error("closing the store", "err", err)
			}
		}()
		srv.store = store
		recovered, err := store.Recover()
		if err != nil {
			return err
		}
		srv.adoptRecovered(recovered)
		logger.Info("durability on", "dir", store.Dir(), "fsync", mode, "compactEvery", *compactEvery)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.routes(), ReadHeaderTimeout: 10 * time.Second}

	// The debug surface (pprof, expvar, /debug/traces) binds its own listener
	// so profiling endpoints and trace data are never reachable through the
	// ingest port.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("-debug-addr: %w", err)
		}
		debugSrv = &http.Server{Handler: debugRoutes(srv.tracer), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server", "err", err)
			}
		}()
		logger.Info("debug server listening", "addr", dln.Addr())
	}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	logger.Info("listening", "addr", ln.Addr(), "k", *k, "z", *z, "budget", *budget, "distance", *dist)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if debugSrv != nil {
		if err := debugSrv.Shutdown(shutdownCtx); err != nil {
			logger.Error("debug server shutdown", "err", err)
		}
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	return nil
}

// streamCore is the surface shared by the plain and the outlier-aware
// streaming clusterers, windowed or not.
type streamCore interface {
	Observe(p kcenter.Point) error
	Centers() (kcenter.Dataset, error)
	Snapshot() ([]byte, error)
	Observed() int64
	WorkingMemory() int
}

// windowCore is the additional surface of sliding-window streams: timestamped
// ingest, explicit clock advances and live-window introspection.
type windowCore interface {
	streamCore
	ObserveAt(p kcenter.Point, ts int64) error
	Advance(ts int64) error
	LastTimestamp() int64
	LiveBuckets() int
	LivePoints() int64
	EvictedBuckets() int64
	EvictedPoints() int64
}

// cloneCore returns an independent copy-on-write copy of a core: the clone
// answers Centers and Snapshot without touching the original, so it can be
// published as an immutable query view while ingest keeps mutating the
// original under the stream mutex.
func cloneCore(c streamCore) streamCore {
	switch v := c.(type) {
	case *kcenter.StreamingKCenter:
		return v.Clone()
	case *kcenter.StreamingOutliers:
		return v.Clone()
	case *kcenter.WindowedKCenter:
		return v.Clone()
	case *kcenter.WindowedOutliers:
		return v.Clone()
	default:
		panic(fmt.Sprintf("unclonable stream core %T", c))
	}
}

// extractKey identifies one cached extraction within a view. Today the only
// key in play is the stream's own (k, z) — the version axis of the cache is
// the view itself, which dies on the next publish.
type extractKey struct{ k, z int }

type extractResult struct {
	centers kcenter.Dataset
	err     error
}

// queryView is the immutable published read side of a stream: a point-in-time
// clone of the clusterer plus the scalar stats that describe it, swapped in
// atomically after every acknowledged mutation. GET handlers answer from the
// newest view without ever taking the stream's ingest mutex, so a query
// observes the state exactly as of an acknowledged batch boundary (snapshot
// isolation) and never stalls behind an in-flight append, fsync or
// compaction.
//
// Extraction and serialization are memoised per view under the view's own
// mutex (the clone's query paths share internal memos, so concurrent readers
// of ONE view serialise on that short critical section — readers of different
// views, and readers vs the writer, share nothing). A repeated query at an
// unchanged version is therefore a cache hit, byte-identical to the first
// answer; publishing a new view is the whole invalidation story.
type queryView struct {
	core    streamCore
	version int64  // mutations applied in-process when this view was published
	walSeq  uint64 // newest journaled sequence folded into the view (0 without a log)

	observed      int64
	workingMemory int
	dim           int
	window        *windowStats // nil for insertion-only streams

	mu          sync.Mutex
	extractions map[extractKey]*extractResult
	snap        []byte
	snapErr     error
	snapDone    bool
}

// centers returns the view's extraction for the given parameters, memoised;
// hit reports whether the cache already held it.
func (v *queryView) centers(key extractKey) (centers kcenter.Dataset, hit bool, err error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if r, ok := v.extractions[key]; ok {
		return r.centers, true, r.err
	}
	c, err := v.core.Centers()
	if v.extractions == nil {
		v.extractions = make(map[extractKey]*extractResult, 1)
	}
	v.extractions[key] = &extractResult{centers: c, err: err}
	return c, false, err
}

// snapshot returns the view's serialized sketch, memoised; hit reports
// whether the cache already held it.
func (v *queryView) snapshot() (snap []byte, hit bool, err error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if !v.snapDone {
		v.snap, v.snapErr = v.core.Snapshot()
		v.snapDone = true
		return v.snap, false, v.snapErr
	}
	return v.snap, true, v.snapErr
}

// namedStream is one hosted stream, split into a mutable ingest side and an
// immutable published read side. The mutex serialises mutations only (the
// clusterers are not safe for concurrent use): ingest and advance append
// under mu, bump version, and publish a fresh queryView. Readers load the
// view pointer and never touch mu. gone flips when the stream is deleted or
// replaced by a restore; failed flips when an applied batch diverged from the
// journal — either way a handler that looked the stream up just before the
// swap fails loudly instead of acknowledging a write into an orphaned object.
type namedStream struct {
	mu      sync.Mutex
	core    streamCore // mutable ingest side; only touched under mu
	version int64      // mutations applied in-process; under mu
	dim     int        // fixed by the first batch (0 = not yet known); under mu

	// Stream parameters, immutable after creation: safe to read lock-free.
	k, z    int
	budget  int
	space   string
	winSize int64 // count window (0 = none)
	winDur  int64 // duration window (0 = none)

	view   atomic.Pointer[queryView]
	gone   atomic.Bool
	failed atomic.Bool

	// log is the stream's durability handle (nil without -persist-dir);
	// recovery carries the boot-time recovery stats of a recovered stream,
	// and compacting guards the single in-flight background compaction.
	log        atomic.Pointer[persist.Log]
	recovery   *persist.RecoveryStats
	compacting atomic.Bool

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// Last published lifetime eviction counters, for per-publish deltas into
	// the daemon metrics; under mu.
	lastEvictedBuckets int64
	lastEvictedPoints  int64
}

// publishLocked snapshots the ingest side into a fresh immutable queryView
// and swaps it in for readers, crediting the publish (and, for window
// streams, the evictions since the last publish) to the daemon metrics.
// Caller holds st.mu (or has exclusive access during construction); m may be
// nil for an uninstrumented server.
func (st *namedStream) publishLocked(m *daemonMetrics) {
	v := &queryView{
		core:          cloneCore(st.core),
		version:       st.version,
		observed:      st.core.Observed(),
		workingMemory: st.core.WorkingMemory(),
		dim:           st.dim,
	}
	if wc, ok := st.core.(windowCore); ok {
		v.window = &windowStats{
			Size:        st.winSize,
			Duration:    st.winDur,
			LiveBuckets: wc.LiveBuckets(),
			LivePoints:  wc.LivePoints(),
		}
		eb, ep := wc.EvictedBuckets(), wc.EvictedPoints()
		if m != nil {
			m.evictedBuckets.Add(eb - st.lastEvictedBuckets)
			m.evictedPoints.Add(ep - st.lastEvictedPoints)
		}
		st.lastEvictedBuckets, st.lastEvictedPoints = eb, ep
	}
	if lg := st.log.Load(); lg != nil {
		v.walSeq = lg.LastSeq()
	}
	st.view.Store(v)
	if m != nil {
		m.viewPublishes.Add(1)
	}
}

// errGone is returned to clients whose request lost a race with a delete or
// restore of the same stream; retrying observes the new state.
var errGone = errors.New("stream was deleted or replaced concurrently; retry")

// errFailed is returned for a stream whose in-memory state diverged from its
// journal (an apply failure after the WAL acknowledged the batch): the stream
// was set aside and the name is free again.
var errFailed = errors.New("stream diverged from its journal and was set aside; recreate it")

type server struct {
	cfg     config
	store   *persist.Store // nil = in-memory only
	logger  *obs.Logger    // nil-safe; nil drops everything
	metrics *daemonMetrics // nil disables instrumentation entirely
	tracer  *obs.Tracer    // nil disables tracing; every recording site is nil-safe

	mu      sync.RWMutex
	streams map[string]*namedStream

	// failed records streams set aside after diverging from their journal
	// (at boot or mid-flight), keyed by name, until the name is reused.
	// Drives the degraded /healthz answer and the /streams status entries.
	failedMu sync.Mutex
	failed   map[string]string
}

func newServer(cfg config) *server {
	if cfg.budget <= 0 {
		cfg.budget = 8 * (cfg.k + cfg.z)
	}
	if cfg.dist == "" {
		cfg.dist = "euclidean"
	}
	if cfg.maxBody <= 0 {
		cfg.maxBody = maxBodyBytes
	}
	if cfg.fsync == "" {
		cfg.fsync = persist.FsyncAlways.String()
	}
	if cfg.obsMaxStreams == 0 {
		cfg.obsMaxStreams = 64
	}
	if cfg.traceSample <= 0 {
		cfg.traceSample = 16
	}
	if cfg.traceBuffer == 0 {
		cfg.traceBuffer = 256 // negative = tracing disabled (NewTracer returns nil)
	}
	return &server{
		cfg:     cfg,
		streams: make(map[string]*namedStream),
		metrics: newDaemonMetrics(),
		tracer:  obs.NewTracer(cfg.traceSample, cfg.traceBuffer),
	}
}

// handleHealthz is the liveness probe. It degrades to 503 when any stream
// has been set aside as failed: the daemon is still serving, but state a
// client acknowledged has been lost, which an orchestrator should surface
// rather than round-robin past.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if failed := s.failedStreams(); len(failed) > 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":        "degraded",
			"failedStreams": failed,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /streams", s.handleList)
	mux.HandleFunc("GET /streams/{name}/stats", s.handleStats)
	mux.HandleFunc("POST /streams/{name}/points", s.handleIngest)
	mux.HandleFunc("POST /streams/{name}/ingest", s.handleIngest)
	mux.HandleFunc("POST /streams/{name}/advance", s.handleAdvance)
	mux.HandleFunc("GET /streams/{name}/centers", s.handleCenters)
	mux.HandleFunc("POST /streams/{name}/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /streams/{name}/restore", s.handleRestore)
	mux.HandleFunc("DELETE /streams/{name}", s.handleDelete)
	mux.HandleFunc("POST /merge", s.handleMerge)
	// withObs sits INSIDE MaxBytesHandler: MaxBytesHandler forwards a shallow
	// copy of the request, and the mux populates Pattern in place on the
	// request it receives — the middleware must hold that same copy to read
	// the route label afterwards.
	return http.MaxBytesHandler(s.withObs(mux), s.cfg.maxBody)
}

// newCore builds a streaming clusterer for the given parameters. The space
// name resolves to a full metric Space (batched kernels + surrogate), so
// ingest runs on the native hot path. Positive winSize/winDur select the
// sliding-window flavour.
func (s *server) newCore(spaceName string, k, z, budget int, winSize, winDur int64) (streamCore, error) {
	space, _, err := sketch.SpaceByName(spaceName)
	if err != nil {
		return nil, err
	}
	opts := []kcenter.Option{kcenter.WithSpace(space), kcenter.WithWorkers(s.cfg.workers)}
	if winSize > 0 || winDur > 0 {
		opts = append(opts, kcenter.WithWindowSize(int(winSize)), kcenter.WithWindowDuration(winDur))
		if z > 0 {
			return kcenter.NewWindowedOutliers(k, z, budget, opts...)
		}
		return kcenter.NewWindowedKCenter(k, budget, opts...)
	}
	if z > 0 {
		return kcenter.NewStreamingOutliers(k, z, budget, opts...)
	}
	return kcenter.NewStreamingKCenter(k, budget, opts...)
}

// flavourMismatch rejects window query parameters aimed at an existing
// insertion-only stream: silently dropping them would acknowledge ingest into
// a stream that never evicts, permanently locking the name to the wrong
// flavour. (winSize/winDur are set once at creation and never mutated, so
// reading them without the stream mutex is safe.)
func flavourMismatch(st *namedStream, r *http.Request) error {
	winSize, err := queryInt64(r, "window", 0)
	if err != nil {
		return err
	}
	winDur, err := queryInt64(r, "windowDur", 0)
	if err != nil {
		return err
	}
	if (winSize > 0 || winDur > 0) && st.winSize == 0 && st.winDur == 0 {
		return errors.New("stream already exists as insertion-only; ?window=/?windowDur= cannot convert it (delete and recreate)")
	}
	return nil
}

// getOrCreate returns the named stream, creating it with the request's (or
// the daemon's) parameters on first touch.
func (s *server) getOrCreate(name string, r *http.Request) (*namedStream, error) {
	s.mu.RLock()
	st, ok := s.streams[name]
	s.mu.RUnlock()
	if ok {
		if err := flavourMismatch(st, r); err != nil {
			return nil, err
		}
		return st, nil
	}
	k, err := queryInt(r, "k", s.cfg.k)
	if err != nil {
		return nil, err
	}
	z, err := queryInt(r, "z", s.cfg.z)
	if err != nil {
		return nil, err
	}
	budget, err := queryInt(r, "budget", 0)
	if err != nil {
		return nil, err
	}
	winSize, err := queryInt64(r, "window", 0)
	if err != nil {
		return nil, err
	}
	winDur, err := queryInt64(r, "windowDur", 0)
	if err != nil {
		return nil, err
	}
	if winSize < 0 || winDur < 0 {
		return nil, fmt.Errorf("window bounds must be non-negative (window=%d windowDur=%d)", winSize, winDur)
	}
	if budget <= 0 {
		if k == s.cfg.k && z == s.cfg.z {
			budget = s.cfg.budget
		} else {
			budget = 8 * (k + z)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.streams[name]; ok {
		// Lost the creation race; use the winner's stream (unless the window
		// parameters conflict with its flavour).
		if err := flavourMismatch(st, r); err != nil {
			return nil, err
		}
		return st, nil
	}
	core, err := s.newCore(s.cfg.dist, k, z, budget, winSize, winDur)
	if err != nil {
		return nil, err
	}
	st = &namedStream{core: core, k: k, z: z, budget: budget, space: s.cfg.dist, winSize: winSize, winDur: winDur}
	if s.store != nil {
		// Journal the creation before the name becomes visible. Holding s.mu
		// across the disk write serialises creation against a concurrent
		// DELETE of the same name (which tombstones the directory under
		// s.mu), so a re-create can never collide with a half-removed
		// directory. The cost — a couple of fsyncs under the server lock —
		// is paid once per stream NAME, never on the steady-state ingest
		// path, which only takes the read lock.
		lg, err := s.store.Create(name, streamMeta(st))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errPersistFailed, err)
		}
		st.log.Store(lg)
	}
	st.publishLocked(s.metrics)
	s.streams[name] = st
	s.clearFailed(name)
	return st, nil
}

// errPersistFailed marks stream-creation failures of the durability layer,
// so handlers report 500 internal instead of blaming the client's params.
var errPersistFailed = errors.New("durability layer failure")

// streamMeta derives the journaled metadata from a stream's parameters.
func streamMeta(st *namedStream) persist.Meta {
	return persist.Meta{
		K:              st.k,
		Z:              st.z,
		Budget:         st.budget,
		Space:          st.space,
		WindowSize:     st.winSize,
		WindowDuration: st.winDur,
	}
}

// adoptRecovered installs the streams the durability layer recovered at
// boot: restore the snapshot (or rebuild an empty core from the journaled
// metadata), verify the snapshot against the metadata, replay the log tail,
// and surface the recovery stats. Streams that fail above the persistence
// layer are set aside (directory renamed *.failed) so the name stays usable.
// Boot recovery records a background trace with one child span per stream,
// always retained, so a slow boot is attributable after the fact.
func (s *server) adoptRecovered(recovered []*persist.Recovered) {
	if len(recovered) == 0 {
		return
	}
	ctx, root := s.tracer.StartBackground(context.Background(), "recovery")
	root.SetAttr("streams", strconv.Itoa(len(recovered)))
	defer root.End()
	for _, rec := range recovered {
		_, sp := obs.StartSpan(ctx, "recover.stream")
		sp.SetAttr("stream", rec.Name)
		if rec.Err != nil {
			sp.SetAttr("status", "failed")
			sp.End()
			s.logger.Error("recovery failed, stream set aside", "stream", rec.Name, "err", rec.Err)
			s.markFailed(rec.Name, rec.Err.Error())
			continue
		}
		st, err := s.rebuildStream(rec)
		if err != nil {
			sp.SetAttr("status", "failed")
			sp.End()
			s.logger.Error("recovery failed, stream set aside", "stream", rec.Name, "err", err)
			if saErr := rec.Log.SetAside(); saErr != nil {
				s.logger.Error("setting stream aside failed", "stream", rec.Name, "err", saErr)
			}
			s.markFailed(rec.Name, err.Error())
			continue
		}
		s.mu.Lock()
		s.streams[rec.Name] = st
		s.mu.Unlock()
		sp.SetAttr("status", "ok")
		sp.End()
		s.logger.Info("recovered stream", "stream", rec.Name,
			"snapshot", rec.Stats.SnapshotLoaded, "records", rec.Stats.RecordsReplayed,
			"points", rec.Stats.PointsReplayed, "tornTail", rec.Stats.TornTail)
	}
}

// rebuildStream revives one recovered stream: snapshot first, then the
// journal tail on top, exactly the order the records were acknowledged in.
func (s *server) rebuildStream(rec *persist.Recovered) (*namedStream, error) {
	var (
		core streamCore
		meta persist.Meta
		dim  int
		err  error
	)
	if rec.Snapshot != nil {
		var info *kcenter.SketchInfo
		core, info, err = s.restoreCore(rec.Snapshot)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		meta = persist.Meta{
			K:              info.K,
			Z:              info.Z,
			Budget:         info.Budget,
			Space:          info.Distance,
			WindowSize:     info.WindowSize,
			WindowDuration: info.WindowDuration,
		}
		// The snapshot must describe the stream the journal was written for:
		// a swapped or stale file silently changing k, the metric space or
		// the window geometry would corrupt every later answer.
		if rec.HaveMeta && meta != rec.Meta {
			return nil, fmt.Errorf("snapshot metadata %+v does not match journaled metadata %+v", meta, rec.Meta)
		}
		if !rec.HaveMeta {
			if err := rec.Log.AdoptMeta(meta); err != nil {
				return nil, err
			}
		}
		dim = info.Dimensions
	} else {
		meta = rec.Meta
		core, err = s.newCore(meta.Space, meta.K, meta.Z, meta.Budget, meta.WindowSize, meta.WindowDuration)
		if err != nil {
			return nil, err
		}
	}
	for i, r := range rec.Tail {
		switch r.Op {
		case persist.OpBatch:
			if r.Timestamps != nil {
				wc, ok := core.(windowCore)
				if !ok {
					return nil, fmt.Errorf("record %d: timestamped batch journaled for a non-window stream", i)
				}
				for j, p := range r.Points {
					if err := wc.ObserveAt(p, r.Timestamps[j]); err != nil {
						return nil, fmt.Errorf("record %d: replay: %w", i, err)
					}
				}
			} else {
				for _, p := range r.Points {
					if err := core.Observe(p); err != nil {
						return nil, fmt.Errorf("record %d: replay: %w", i, err)
					}
				}
			}
			if dim == 0 {
				dim = r.Points.Dim()
			}
		case persist.OpAdvance:
			wc, ok := core.(windowCore)
			if !ok {
				return nil, fmt.Errorf("record %d: advance journaled for a non-window stream", i)
			}
			if err := wc.Advance(r.AdvanceTo); err != nil {
				return nil, fmt.Errorf("record %d: replay: %w", i, err)
			}
		default:
			return nil, fmt.Errorf("record %d: unexpected op %v in replay tail", i, r.Op)
		}
	}
	stats := rec.Stats
	st := &namedStream{
		core:     core,
		k:        meta.K,
		z:        meta.Z,
		budget:   meta.Budget,
		space:    meta.Space,
		winSize:  meta.WindowSize,
		winDur:   meta.WindowDuration,
		dim:      dim,
		recovery: &stats,
	}
	st.log.Store(rec.Log)
	st.publishLocked(s.metrics)
	return st, nil
}

func (s *server) lookup(name string) (*namedStream, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.streams[name]
	return st, ok
}

type ingestRequest struct {
	Points kcenter.Dataset `json:"points"`
	// Timestamps optionally carries one non-negative, non-decreasing int64
	// per point (window streams only), in the same caller-defined units as
	// the stream's ?windowDur= bound.
	Timestamps []int64 `json:"timestamps,omitempty"`
}

type windowStats struct {
	Size        int64 `json:"size,omitempty"`
	Duration    int64 `json:"duration,omitempty"`
	LiveBuckets int   `json:"liveBuckets"`
	LivePoints  int64 `json:"livePoints"`
}

// durabilityStats surfaces the stream's journal state and, for streams that
// survived a restart, what boot-time recovery did.
type durabilityStats struct {
	persist.LogStats
	Fsync    string                 `json:"fsync"`
	Recovery *persist.RecoveryStats `json:"recovery,omitempty"`
}

// cacheStats counts the stream's extraction-cache behaviour: a hit answers a
// centers query from the published view's memo, a miss runs the extraction
// (and primes the memo for the next query at the same version).
type cacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

type streamStats struct {
	Name string `json:"name"`
	// Status is "ok" for a live stream; /streams also lists set-aside streams
	// with status "failed" and the failure reason.
	Status        string           `json:"status"`
	Reason        string           `json:"reason,omitempty"`
	K             int              `json:"k"`
	Z             int              `json:"z"`
	Budget        int              `json:"budget"`
	Space         string           `json:"space"`
	Observed      int64            `json:"observed"`
	WorkingMemory int              `json:"workingMemory"`
	Version       int64            `json:"version"`
	Cache         cacheStats       `json:"cache"`
	Window        *windowStats     `json:"window,omitempty"`
	Durability    *durabilityStats `json:"durability,omitempty"`
}

// statsFromView assembles the stats payload from a published view plus the
// stream's lock-free counters — no stream mutex anywhere on the path (the
// durability stats read the journal's lock-free snapshot too).
func (s *server) statsFromView(name string, st *namedStream, v *queryView) streamStats {
	stats := streamStats{
		Name:          name,
		Status:        "ok",
		K:             st.k,
		Z:             st.z,
		Budget:        st.budget,
		Space:         st.space,
		Observed:      v.observed,
		WorkingMemory: v.workingMemory,
		Version:       v.version,
		Cache:         cacheStats{Hits: st.cacheHits.Load(), Misses: st.cacheMisses.Load()},
		Window:        v.window,
	}
	if lg := st.log.Load(); lg != nil {
		stats.Durability = &durabilityStats{
			LogStats: lg.Stats(),
			Fsync:    s.cfg.fsync,
			Recovery: st.recovery,
		}
	}
	return stats
}

// validateBatch enforces every precondition of an ingest batch BEFORE any
// point is applied, so a rejected batch never partially mutates the stream:
// non-empty, finite coordinates, rectangular dimensions, and (when present)
// one sorted non-negative timestamp per point.
func validateBatch(req *ingestRequest) (status int, code string, err error) {
	if len(req.Points) == 0 {
		return http.StatusBadRequest, codeEmptyBatch, errors.New("empty batch")
	}
	if err := req.Points.Validate(); err != nil {
		code := codeInvalidPoint
		if errors.Is(err, metric.ErrDimensionMismatch) {
			code = codeDimensionMismatch
		}
		return http.StatusBadRequest, code, err
	}
	if req.Points.Dim() == 0 {
		// Zero-dimension points would collide with the "dimension not yet
		// known" sentinel and poison later real batches.
		return http.StatusBadRequest, codeInvalidPoint, errors.New("points must have at least one coordinate")
	}
	if req.Timestamps != nil {
		if len(req.Timestamps) != len(req.Points) {
			return http.StatusBadRequest, codeInvalidTimestamps,
				fmt.Errorf("%d timestamps for %d points", len(req.Timestamps), len(req.Points))
		}
		for i, ts := range req.Timestamps {
			if ts < 0 {
				return http.StatusBadRequest, codeInvalidTimestamps, fmt.Errorf("timestamp %d is negative (%d)", i, ts)
			}
			if i > 0 && ts < req.Timestamps[i-1] {
				return http.StatusBadRequest, codeInvalidTimestamps,
					fmt.Errorf("timestamp %d (%d) precedes timestamp %d (%d)", i, ts, i-1, req.Timestamps[i-1])
			}
		}
	}
	return 0, "", nil
}

// decodeJSON strictly decodes a JSON request body: unknown fields are
// rejected, trailing data after the document is rejected, and a body over
// the -max-body cap maps to 413 body_too_large. It writes the error response
// itself and reports whether decoding succeeded.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, codeInvalidJSON, fmt.Errorf("invalid JSON body: %w", err))
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, codeInvalidJSON, errors.New("trailing data after JSON body"))
		return false
	}
	return true
}

// handleIngest serves both ingest routes (/points and its alias /ingest),
// negotiating the decoder by Content-Type: JSON stays the default, and
// "application/x-kcenter-flat" selects the binary flat-frame decoder — no
// JSON anywhere on that path. Both decoders feed the same ingestBatch core,
// so validation, journaling, atomicity and the response shape are identical.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	switch negotiateIngest(r) {
	case mediaBinary:
		s.handleIngestBinary(w, r)
	case mediaJSON:
		s.handleIngestJSON(w, r)
	default:
		httpError(w, http.StatusUnsupportedMediaType, codeUnsupportedMedia,
			fmt.Errorf("unsupported Content-Type %q (use application/json or %s)",
				r.Header.Get("Content-Type"), binaryContentType))
	}
}

// handleIngestJSON is the JSON decode front end: pooled decode buffers (the
// carrier), strict decoding, full up-front validation, then one contiguous
// copy of the batch into stream-owned storage.
func (s *server) handleIngestJSON(w http.ResponseWriter, r *http.Request) {
	c := ingestPool.Get().(*ingestCarrier)
	defer ingestPool.Put(c)
	_, decode := obs.StartSpan(r.Context(), "decode")
	decode.SetAttr("proto", "json")
	ok := c.readIngestJSON(w, r)
	decode.End()
	if !ok {
		return
	}
	_, validate := obs.StartSpan(r.Context(), "validate")
	if status, code, err := validateBatch(&c.req); err != nil {
		validate.End()
		httpError(w, status, code, err)
		return
	}
	// The pooled points are about to be reused by another request; what the
	// stream keeps must be a private contiguous copy.
	batch, err := compactBatch(c.req.Points)
	validate.End()
	if err != nil {
		httpError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	s.ingestBatch(w, r, batch, c.req.Timestamps, -1)
}

// handleIngestBinary is the binary decode front end: the body is one flat
// frame (plus optional timestamp trailer), decoded straight into contiguous
// storage with zero per-point allocations and no JSON anywhere.
func (s *server) handleIngestBinary(w http.ResponseWriter, r *http.Request) {
	_, decode := obs.StartSpan(r.Context(), "decode")
	decode.SetAttr("proto", "binary")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		decode.End()
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, codeInvalidFrame, fmt.Errorf("reading request body: %w", err))
		return
	}
	f, ts, code, err := decodeBinaryIngest(body)
	decode.End()
	if err != nil {
		httpError(w, http.StatusBadRequest, code, err)
		return
	}
	s.ingestBatch(w, r, f.Dataset(), ts, len(body))
}

// ingestBatch is the shared ingest core behind both decoders. The batch is
// fully validated, dimensionally consistent and stream-owned when it arrives
// here. Under group commit the WAL write (BeginBatch) is issued under the
// stream mutex — so journal order equals apply order — but the covering
// fsync is awaited AFTER the mutex is released: while this batch's fsync is
// in flight, the next batches append their frames and join the same disk
// flush, which is where the -fsync=always throughput multiple comes from.
// The 200 still implies durability per the fsync mode; a Wait failure is a
// 500 on a now-poisoned log, exactly like an inline fsync failure.
func (s *server) ingestBatch(w http.ResponseWriter, r *http.Request, batch metric.Dataset, timestamps []int64, binaryBytes int) {
	name := r.PathValue("name")
	if timestamps != nil {
		// Reject timestamps aimed at a non-window stream BEFORE getOrCreate
		// runs: otherwise a first ingest that forgot ?window= would create a
		// plain stream as a side effect of its own rejection, permanently
		// locking the name to the wrong flavour. (The locked re-check below
		// stays authoritative against creation races.)
		if st, ok := s.lookup(name); ok {
			if _, isWin := st.core.(windowCore); !isWin {
				httpError(w, http.StatusBadRequest, codeNotWindowed,
					errors.New("timestamps are only accepted by window streams (create with ?window= or ?windowDur=)"))
				return
			}
		} else {
			// == 0, not <= 0: explicitly negative bounds fall through to
			// getOrCreate's own validation and report invalid_param instead
			// of a misleading "add ?window=" hint.
			winSize, err1 := queryInt64(r, "window", 0)
			winDur, err2 := queryInt64(r, "windowDur", 0)
			if err1 == nil && err2 == nil && winSize == 0 && winDur == 0 {
				httpError(w, http.StatusBadRequest, codeNotWindowed,
					errors.New("timestamped batches need a window stream: create it with ?window= or ?windowDur="))
				return
			}
		}
	}
	st, err := s.getOrCreate(name, r)
	if err != nil {
		if errors.Is(err, errPersistFailed) {
			httpError(w, http.StatusInternalServerError, codeInternal, err)
		} else {
			httpError(w, http.StatusBadRequest, codeInvalidParam, err)
		}
		return
	}

	st.mu.Lock()
	if code, err := st.gateLocked(); err != nil {
		st.mu.Unlock()
		httpError(w, statusForGate(code), code, err)
		return
	}
	if st.dim != 0 && batch.Dim() != st.dim {
		st.mu.Unlock()
		httpError(w, http.StatusBadRequest, codeDimensionMismatch,
			fmt.Errorf("batch dimension %d does not match stream dimension %d", batch.Dim(), st.dim))
		return
	}
	if timestamps != nil {
		wc, ok := st.core.(windowCore)
		if !ok {
			st.mu.Unlock()
			httpError(w, http.StatusBadRequest, codeNotWindowed,
				errors.New("timestamps are only accepted by window streams (create with ?window= or ?windowDur=)"))
			return
		}
		// The stream's clock only moves forward; checked up front so the
		// whole batch is rejected before any point lands — and before it is
		// journaled, so a record that would fail replay is never written.
		if last := wc.LastTimestamp(); timestamps[0] < last {
			st.mu.Unlock()
			httpError(w, http.StatusBadRequest, codeInvalidTimestamps,
				fmt.Errorf("batch starts at timestamp %d, stream is already at %d", timestamps[0], last))
			return
		}
	}
	// Journal, then apply: the batch has passed every validation that could
	// reject it, so the WAL record and the in-memory mutation stand or fall
	// together, and the acknowledgement below implies durability (per the
	// fsync mode). The frame is written and sequenced here under st.mu —
	// journal order equals apply order — but under group commit the covering
	// fsync is awaited only after the mutex is released, so concurrent
	// batches on this and other streams share disk flushes.
	var pending *persist.Pending
	if lg := st.log.Load(); lg != nil {
		_, journal := obs.StartSpan(r.Context(), "journal")
		p, err := lg.BeginBatch(batch, timestamps)
		journal.End()
		if err != nil {
			st.mu.Unlock()
			httpError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
		pending = p
	}
	_, apply := obs.StartSpan(r.Context(), "apply")
	apply.SetAttr("points", strconv.Itoa(len(batch)))
	var applyErr error
	if timestamps != nil {
		wc := st.core.(windowCore)
		for i, p := range batch {
			if applyErr = applyPointHook(i); applyErr != nil {
				break
			}
			if applyErr = wc.ObserveAt(p, timestamps[i]); applyErr != nil {
				break
			}
		}
	} else {
		for i, p := range batch {
			if applyErr = applyPointHook(i); applyErr != nil {
				break
			}
			if applyErr = st.core.Observe(p); applyErr != nil {
				break
			}
		}
	}
	apply.End()
	if applyErr != nil {
		// The journal acknowledged records the in-memory state no longer
		// reflects (the batch was only partially applied): every later answer
		// and every replay would silently diverge. Fail the stream — set it
		// aside like an unrecoverable boot, free the name — instead of
		// serving corrupt state.
		st.failed.Store(true)
		st.gone.Store(true)
		st.mu.Unlock()
		s.failStream(name, st, applyErr)
		httpError(w, http.StatusInternalServerError, codeStreamFailed,
			fmt.Errorf("batch failed to apply after it was journaled; %w: %v", errFailed, applyErr))
		return
	}
	st.dim = batch.Dim()
	st.version++
	_, publish := obs.StartSpan(r.Context(), "publish")
	st.publishLocked(s.metrics)
	publish.End()
	s.maybeCompactLocked(name, st)
	stats := s.statsFromView(name, st, st.view.Load())
	st.mu.Unlock()
	// Block for durability OUTSIDE the stream mutex: this is the group-commit
	// window — while this batch's fsync is in flight, the next requests take
	// st.mu, journal their frames and join the next flush. A Wait failure
	// means the fsync failed after the frame was written; the log is poisoned
	// and the outcome is indeterminate (the frame may or may not survive
	// recovery), so the client gets a 500, never a 200. The applied-but-
	// unacked view state is the same transient recovery would produce.
	// WaitCtx attributes the enqueue→ack time to this request's trace as a
	// wal.wait span.
	if pending != nil {
		if err := pending.WaitCtx(r.Context()); err != nil {
			httpError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
	}
	if m := s.metrics; m != nil {
		m.ingestBatches.Add(1)
		m.ingestPoints.Add(int64(len(batch)))
		if binaryBytes >= 0 {
			m.ingestBinaryBytes.Add(int64(binaryBytes))
			m.ingestBinaryPoints.Add(int64(len(batch)))
		}
	}
	writeJSON(w, http.StatusOK, stats)
}

// gateLocked rejects requests that raced a delete, restore or failure of the
// stream. Callers hold st.mu (writers) or nothing at all (readers — the flags
// are atomic and only ever flip one way).
func (st *namedStream) gateLocked() (code string, err error) {
	if st.failed.Load() {
		return codeStreamFailed, errFailed
	}
	if st.gone.Load() {
		return codeStreamGone, errGone
	}
	return "", nil
}

func statusForGate(code string) int {
	if code == codeStreamFailed {
		return http.StatusInternalServerError
	}
	return http.StatusConflict
}

// failStream sets a diverged stream aside (journal renamed *.failed, name
// removed from the table). Called WITHOUT st.mu: the failed/gone flags are
// already set, so every concurrent handler fails at its gate, and the map
// removal needs the server lock (lock order is server -> stream).
func (s *server) failStream(name string, st *namedStream, cause error) {
	s.logger.Error("apply diverged from the journal, stream set aside", "stream", name, "err", cause)
	if lg := st.log.Swap(nil); lg != nil {
		if err := lg.SetAside(); err != nil {
			s.logger.Error("setting stream aside failed", "stream", name, "err", err)
		}
	}
	s.mu.Lock()
	if cur, ok := s.streams[name]; ok && cur == st {
		delete(s.streams, name)
	}
	s.mu.Unlock()
	s.markFailed(name, cause.Error())
}

// applyPointHook is a test seam called before each point of a batch is
// applied: a non-nil error simulates a mid-batch apply failure, which is
// otherwise unreachable because batches are fully validated up front. The
// default is free of overhead beyond one predictable branch.
var applyPointHook = func(i int) error { return nil }

// compactStartHook is a test seam called at the start of a background
// compaction, before the view is serialized; tests block here to prove
// ingest proceeds while a compaction is in flight.
var compactStartHook = func() {}

// maybeCompactLocked kicks off a background snapshot compaction when the
// stream's journal has grown past the threshold. Caller holds st.mu and has
// just published the current view, so the view's walSeq covers every
// journaled record; the compaction itself captures that view and runs with NO
// stream lock at all — serialization and the disk I/O (snapshot write, WAL
// rewrite, fsyncs) happen entirely off the ingest path, and records appended
// meanwhile are preserved by CompactAt. At most one compaction per stream is
// in flight. Each compaction records a background trace of its own
// (serialize + wal.compact stages), always retained.
func (s *server) maybeCompactLocked(name string, st *namedStream) {
	lg := st.log.Load()
	if lg == nil || !lg.ShouldCompact() {
		return
	}
	if !st.compacting.CompareAndSwap(false, true) {
		return
	}
	v := st.view.Load()
	go func() {
		defer st.compacting.Store(false)
		compactStartHook()
		if st.gone.Load() {
			return
		}
		ctx, root := s.tracer.StartBackground(context.Background(), "compact")
		root.SetAttr("stream", name)
		defer root.End()
		_, serialize := obs.StartSpan(ctx, "serialize")
		snap, _, err := v.snapshot()
		serialize.End()
		if err != nil {
			root.SetAttr("error", err.Error())
			s.logger.Error("compaction: serializing the view failed", "err", err)
			return
		}
		_, compact := obs.StartSpan(ctx, "wal.compact")
		err = lg.CompactAt(v.walSeq, snap)
		compact.End()
		if err != nil && !errors.Is(err, persist.ErrLogRemoved) {
			root.SetAttr("error", err.Error())
			s.logger.Error("compaction failed", "err", err)
		}
	}()
}

// advanceRequest moves a window stream's clock forward without observing a
// point, evicting buckets that age out of a duration window.
type advanceRequest struct {
	To int64 `json:"to"`
}

func (s *server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req advanceRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	name := r.PathValue("name")
	st, ok := s.lookup(name)
	if !ok {
		httpError(w, http.StatusNotFound, codeUnknownStream, fmt.Errorf("unknown stream %q", name))
		return
	}
	st.mu.Lock()
	if code, err := st.gateLocked(); err != nil {
		st.mu.Unlock()
		httpError(w, statusForGate(code), code, err)
		return
	}
	wc, ok := st.core.(windowCore)
	if !ok {
		st.mu.Unlock()
		httpError(w, http.StatusBadRequest, codeNotWindowed,
			errors.New("only window streams have a clock to advance"))
		return
	}
	// Validated before journaling, so a record that would fail replay is
	// never written.
	if req.To < 0 {
		st.mu.Unlock()
		httpError(w, http.StatusBadRequest, codeInvalidTimestamps, fmt.Errorf("advance target %d is negative", req.To))
		return
	}
	if last := wc.LastTimestamp(); req.To < last {
		st.mu.Unlock()
		httpError(w, http.StatusBadRequest, codeInvalidTimestamps,
			fmt.Errorf("advance target %d precedes the stream clock %d", req.To, last))
		return
	}
	var pending *persist.Pending
	if lg := st.log.Load(); lg != nil {
		_, journal := obs.StartSpan(r.Context(), "journal")
		p, err := lg.BeginAdvance(req.To)
		journal.End()
		if err != nil {
			st.mu.Unlock()
			httpError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
		pending = p
	}
	_, apply := obs.StartSpan(r.Context(), "apply")
	if err := wc.Advance(req.To); err != nil {
		apply.End()
		// Same divergence as a mid-batch apply failure: the journal holds a
		// record the in-memory state rejected.
		st.failed.Store(true)
		st.gone.Store(true)
		st.mu.Unlock()
		s.failStream(name, st, err)
		httpError(w, http.StatusInternalServerError, codeStreamFailed,
			fmt.Errorf("advance failed to apply after it was journaled; %w: %v", errFailed, err))
		return
	}
	apply.End()
	st.version++
	_, publish := obs.StartSpan(r.Context(), "publish")
	st.publishLocked(s.metrics)
	publish.End()
	s.maybeCompactLocked(name, st)
	stats := s.statsFromView(name, st, st.view.Load())
	st.mu.Unlock()
	// Same ordering as ingestBatch: durability is awaited outside st.mu so
	// concurrent writers share the covering fsync.
	if pending != nil {
		if err := pending.WaitCtx(r.Context()); err != nil {
			httpError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, stats)
}

// handleStats is the introspection endpoint: per-stream counters, working
// memory, space name and (for window streams) the live window state. Answered
// entirely from the published view and lock-free counters — it never takes
// the stream's ingest mutex.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, ok := s.lookup(name)
	if !ok {
		httpError(w, http.StatusNotFound, codeUnknownStream, fmt.Errorf("unknown stream %q", name))
		return
	}
	if code, err := st.gateLocked(); err != nil {
		httpError(w, statusForGate(code), code, err)
		return
	}
	writeJSON(w, http.StatusOK, s.statsFromView(name, st, st.view.Load()))
}

type centersResponse struct {
	streamStats
	Centers kcenter.Dataset `json:"centers"`
}

// handleCenters extracts the current k centers from the newest published
// view, never taking the stream's ingest mutex: the answer is a consistent
// snapshot as of the view's version, and a repeated query at an unchanged
// version is a cache hit (the view memoises its extraction).
func (s *server) handleCenters(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, ok := s.lookup(name)
	if !ok {
		httpError(w, http.StatusNotFound, codeUnknownStream, fmt.Errorf("unknown stream %q", name))
		return
	}
	if code, err := st.gateLocked(); err != nil {
		httpError(w, statusForGate(code), code, err)
		return
	}
	v := st.view.Load()
	_, extract := obs.StartSpan(r.Context(), "extract")
	centers, hit, err := v.centers(extractKey{k: st.k, z: st.z})
	if hit {
		extract.SetAttr("cache", "hit")
	} else {
		extract.SetAttr("cache", "miss")
	}
	extract.End()
	if hit {
		st.cacheHits.Add(1)
	} else {
		st.cacheMisses.Add(1)
	}
	if m := s.metrics; m != nil {
		if hit {
			m.cacheHits.Add(1)
		} else {
			m.cacheMisses.Add(1)
		}
	}
	if err != nil {
		// A window stream whose every bucket has been evicted has nothing to
		// answer with; other extraction failures are equally state conflicts.
		httpError(w, http.StatusConflict, codeEmptyStream, err)
		return
	}
	writeJSON(w, http.StatusOK, centersResponse{
		streamStats: s.statsFromView(name, st, v),
		Centers:     centers,
	})
}

// handleSnapshot serializes the newest published view — wait-free like the
// other reads, and memoised, so back-to-back snapshots at an unchanged
// version serialize once and answer byte-identically.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, ok := s.lookup(name)
	if !ok {
		httpError(w, http.StatusNotFound, codeUnknownStream, fmt.Errorf("unknown stream %q", name))
		return
	}
	if code, err := st.gateLocked(); err != nil {
		httpError(w, statusForGate(code), code, err)
		return
	}
	_, serialize := obs.StartSpan(r.Context(), "snapshot")
	snap, hit, err := st.view.Load().snapshot()
	if hit {
		serialize.SetAttr("cache", "hit")
	} else {
		serialize.SetAttr("cache", "miss")
	}
	serialize.End()
	if err != nil {
		httpError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(snap)))
	w.WriteHeader(http.StatusOK)
	if n, err := w.Write(snap); err != nil {
		// The response status is already on the wire; all that is left is to
		// make the truncation observable on the server side too.
		s.logger.Warn("snapshot: short write to client", "stream", name,
			"written", n, "size", len(snap), "err", err)
	}
}

func (s *server) handleRestore(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, codeInvalidParam, err)
		return
	}
	core, info, err := s.restoreCore(data)
	if err != nil {
		httpError(w, http.StatusBadRequest, codeBadSketch, err)
		return
	}
	name := r.PathValue("name")
	st := &namedStream{
		core: core, k: info.K, z: info.Z, budget: info.Budget, dim: info.Dimensions,
		space: info.Distance, winSize: info.WindowSize, winDur: info.WindowDuration,
	}
	// Durable restore: the restored state becomes the stream's snapshot and
	// its journal starts fresh. The canonical re-snapshot (not the client's
	// bytes) is persisted so later compactions are byte-identical to it.
	var snap []byte
	if s.store != nil {
		if snap, err = core.Snapshot(); err != nil {
			httpError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
	}
	s.mu.Lock()
	if old, ok := s.streams[name]; ok {
		// Mark the replaced stream dead under its own mutex so a handler
		// that already looked it up fails with 409 instead of acknowledging
		// a write into the orphan: taking old.mu waits out any in-flight
		// append. (Lock order server->stream is safe: no handler acquires
		// the server lock while holding a stream lock.)
		old.mu.Lock()
		old.gone.Store(true)
		if lg := old.log.Swap(nil); lg != nil {
			// The old journal dies with the old state; Replace below writes
			// the new directory contents.
			if err := lg.Remove(); err != nil {
				s.logger.Error("restore: removing the old journal failed", "stream", name, "err", err)
			}
		}
		old.mu.Unlock()
	}
	if s.store != nil {
		lg, err := s.store.Replace(name, streamMeta(st), snap)
		if err != nil {
			// Neither the old nor the new state is trustworthy now; drop the
			// name entirely rather than serving a stream that will not
			// survive a restart.
			delete(s.streams, name)
			s.mu.Unlock()
			httpError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
		st.log.Store(lg)
	}
	st.publishLocked(s.metrics)
	s.streams[name] = st
	s.mu.Unlock()
	s.clearFailed(name)
	writeJSON(w, http.StatusOK, s.statsFromView(name, st, st.view.Load()))
}

// restoreCore revives a sketch of any kind — insertion-only or windowed,
// plain or outlier-aware — as a live stream.
func (s *server) restoreCore(data []byte) (streamCore, *kcenter.SketchInfo, error) {
	info, err := kcenter.InspectSketch(data)
	if err != nil {
		return nil, nil, err
	}
	var core streamCore
	switch {
	case info.Window && info.Outliers:
		core, err = kcenter.RestoreWindowedOutliers(data, kcenter.WithWorkers(s.cfg.workers))
	case info.Window:
		core, err = kcenter.RestoreWindowedKCenter(data, kcenter.WithWorkers(s.cfg.workers))
	case info.Outliers:
		core, err = kcenter.RestoreStreamingOutliers(data, kcenter.WithWorkers(s.cfg.workers))
	default:
		core, err = kcenter.RestoreStreamingKCenter(data, kcenter.WithWorkers(s.cfg.workers))
	}
	if err != nil {
		return nil, nil, err
	}
	return core, info, nil
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	st, ok := s.streams[name]
	delete(s.streams, name)
	var rmErr error
	if ok {
		// Tombstone the stream's directory while still holding the server
		// lock: creation of the same name also runs under s.mu, so a racing
		// re-create can never collide with the half-removed directory.
		// Taking st.mu (server->stream order, same as restore) makes the
		// delete wait for an in-flight append instead of yanking the journal
		// out from under it; handlers that already hold a stale pointer see
		// gone and answer 409. The map entry itself is removed above, so the
		// per-stream mutex is garbage-collected with the stream — the stream
		// table cannot accumulate mutexes for deleted names.
		st.mu.Lock()
		st.gone.Store(true)
		if lg := st.log.Swap(nil); lg != nil {
			rmErr = lg.Remove()
		}
		st.mu.Unlock()
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, codeUnknownStream, fmt.Errorf("unknown stream %q", name))
		return
	}
	if rmErr != nil {
		httpError(w, http.StatusInternalServerError, codeInternal,
			fmt.Errorf("stream dropped but its durable state could not be fully removed: %w", rmErr))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.streams))
	for name := range s.streams {
		names = append(names, name)
	}
	s.mu.RUnlock()
	failed := s.failedStreams()
	for name := range failed {
		// A failed name that was since recreated is listed live, not failed.
		if _, ok := s.lookup(name); ok {
			delete(failed, name)
		} else {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make([]streamStats, 0, len(names))
	for _, name := range names {
		if reason, isFailed := failed[name]; isFailed {
			out = append(out, streamStats{Name: name, Status: "failed", Reason: reason})
			continue
		}
		if st, ok := s.lookup(name); ok {
			out = append(out, s.statsFromView(name, st, st.view.Load()))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"streams": out})
}

type mergeRequest struct {
	Sketches []string `json:"sketches"`
}

type mergeResponse struct {
	Sketch   string          `json:"sketch"`
	Observed int64           `json:"observed"`
	Centers  kcenter.Dataset `json:"centers"`
}

func (s *server) handleMerge(w http.ResponseWriter, r *http.Request) {
	var req mergeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Sketches) == 0 {
		httpError(w, http.StatusBadRequest, codeEmptyBatch, errors.New("no sketches to merge"))
		return
	}
	blobs := make([][]byte, len(req.Sketches))
	for i, b64 := range req.Sketches {
		blob, err := base64.StdEncoding.DecodeString(b64)
		if err != nil {
			httpError(w, http.StatusBadRequest, codeBadSketch, fmt.Errorf("sketch %d: invalid base64: %w", i, err))
			return
		}
		blobs[i] = blob
	}
	merged, err := kcenter.MergeSketches(blobs...)
	if err != nil {
		httpError(w, http.StatusBadRequest, codeBadSketch, err)
		return
	}
	core, info, err := s.restoreCore(merged)
	if err != nil {
		httpError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	resp := mergeResponse{
		Sketch:   base64.StdEncoding.EncodeToString(merged),
		Observed: info.Observed,
	}
	if info.Observed > 0 {
		centers, err := core.Centers()
		if err != nil {
			httpError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
		resp.Centers = centers
	}
	writeJSON(w, http.StatusOK, resp)
}

func queryInt(r *http.Request, key string, fallback int) (int, error) {
	n, err := queryInt64(r, key, int64(fallback))
	if err != nil {
		return 0, err
	}
	if n < math.MinInt32 || n > math.MaxInt32 {
		return 0, fmt.Errorf("%s=%d out of range", key, n)
	}
	return int(n), nil
}

func queryInt64(r *http.Request, key string, fallback int64) (int64, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return fallback, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid %s=%q", key, v)
	}
	return n, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// errorResponse is the uniform error body: a human-readable message plus a
// stable machine-readable code clients can branch on.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func httpError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error(), Code: code})
}
