// Command kcenterd is a sharded-ingest daemon for streaming k-center
// clustering: it hosts named streams, each backed by the library's
// fixed-memory streaming clusterer, and exposes the sketch subsystem over
// HTTP so that independent shard daemons can snapshot their state and a
// coordinator can merge the sketches into a global summary.
//
// Endpoints:
//
//	GET    /healthz                      liveness probe
//	GET    /streams                      list streams and their stats
//	GET    /streams/{name}/stats         introspect one stream (counts, memory, window, durability)
//	POST   /streams/{name}/points        batch ingest {"points": [[...], ...], "timestamps": [...]}
//	POST   /streams/{name}/advance       move a window stream's clock: {"to": ts}
//	GET    /streams/{name}/centers       extract the current k centers
//	POST   /streams/{name}/snapshot      serialize the stream (octet-stream)
//	POST   /streams/{name}/restore       recreate the stream from a sketch body
//	DELETE /streams/{name}               drop the stream
//	POST   /merge                        merge base64 sketches {"sketches": [...]}
//
// Streams are created on first ingest with the daemon's default parameters;
// ?k= &z= &budget= query parameters on that first request override them.
// ?window=N and/or ?windowDur=D make the stream a sliding-window one: it
// summarises only the last N points and/or the last D timestamp ticks, with
// whole buckets evicted automatically as they age out. Window streams accept
// an optional "timestamps" array alongside "points" (one non-negative,
// non-decreasing int64 per point, in the same caller-defined units as
// ?windowDur=); batches without timestamps reuse the newest observed one.
// Snapshots of window streams carry the full window state (magic KCWN) and
// restore to live window streams; window sketches cannot be merged.
//
// With -persist-dir set, every stream is durable: stream creation, ingest
// batches and clock advances are journaled to a per-stream write-ahead log
// (fsynced per -fsync) before they are acknowledged, the stream state is
// periodically compacted into a snapshot via the sketch codecs (-compact-every
// journaled records), and on boot the daemon recovers every stream by loading
// its newest valid snapshot and replaying the log tail — a recovered stream's
// re-snapshot is byte-identical to an uninterrupted run's. DELETE tombstones
// the stream's directory; restore replaces it atomically. Per-stream recovery
// and journal statistics are surfaced on GET /streams/{name}/stats.
//
// Error responses are typed: {"error": ..., "code": ...} where code is a
// stable machine-readable identifier (invalid_point, dimension_mismatch,
// invalid_timestamps, unknown_stream, body_too_large, ...). Batches are
// validated before any point is applied, so a rejected batch (NaN/Inf
// coordinates, ragged or mismatched dimensions, bad timestamps) never
// perturbs stream state. JSON bodies are decoded strictly: unknown fields
// and trailing data are invalid_json, and a body over -max-body bytes is a
// 413 body_too_large.
//
// Every handler takes the owning stream's mutex, so concurrent ingest into
// one stream is safe (and serialised), while distinct streams ingest in
// parallel. SIGINT/SIGTERM trigger a graceful shutdown that drains in-flight
// requests and flushes the journals.
//
// Usage:
//
//	kcenterd -addr :8080 -k 20 -budget 320
//	kcenterd -addr :8080 -k 20 -z 100 -distance manhattan
//	kcenterd -addr :8080 -persist-dir /var/lib/kcenterd -fsync always
package main

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"time"

	kcenter "coresetclustering"
	"coresetclustering/internal/metric"
	"coresetclustering/internal/persist"
	"coresetclustering/internal/sketch"
)

// Stable machine-readable error codes carried by every error response.
const (
	codeInvalidJSON       = "invalid_json"
	codeEmptyBatch        = "empty_batch"
	codeInvalidPoint      = "invalid_point"
	codeDimensionMismatch = "dimension_mismatch"
	codeInvalidParam      = "invalid_param"
	codeInvalidTimestamps = "invalid_timestamps"
	codeNotWindowed       = "not_windowed"
	codeUnknownStream     = "unknown_stream"
	codeStreamGone        = "stream_gone"
	codeBadSketch         = "bad_sketch"
	codeEmptyStream       = "empty_stream"
	codeBodyTooLarge      = "body_too_large"
	codeInternal          = "internal"
)

// maxBodyBytes is the default bound on every request body (batches and
// sketches alike); -max-body overrides it.
const maxBodyBytes = 64 << 20

func main() {
	if err := run(context.Background(), os.Args[1:], log.New(os.Stderr, "kcenterd: ", log.LstdFlags)); err != nil {
		fmt.Fprintln(os.Stderr, "kcenterd:", err)
		os.Exit(1)
	}
}

// config carries the daemon defaults applied to implicitly created streams.
type config struct {
	k       int
	z       int
	budget  int
	workers int
	dist    string
	maxBody int64  // request-body cap in bytes (0 = maxBodyBytes)
	fsync   string // fsync mode name, surfaced in durability stats
}

func run(ctx context.Context, args []string, logger *log.Logger) error {
	fs := flag.NewFlagSet("kcenterd", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		k             = fs.Int("k", 10, "default number of centers for new streams")
		z             = fs.Int("z", 0, "default number of outliers for new streams (0 = plain k-center)")
		budget        = fs.Int("budget", 0, "default working-memory budget in points (0 = 8*(k+z))")
		workers       = fs.Int("workers", 0, "distance-engine parallelism for extraction (0 = one per CPU)")
		dist          = fs.String("distance", "euclidean", fmt.Sprintf("metric space %v", sketch.DistanceNames()))
		maxBody       = fs.Int64("max-body", maxBodyBytes, "request body size cap in bytes")
		persistDir    = fs.String("persist-dir", "", "root directory for per-stream durability (WAL + snapshots); empty = in-memory only")
		fsyncMode     = fs.String("fsync", "always", "WAL flush policy: always, interval or never")
		fsyncInterval = fs.Duration("fsync-interval", 100*time.Millisecond, "flush period under -fsync=interval")
		compactEvery  = fs.Int("compact-every", 1024, "journaled records per stream that trigger snapshot compaction (negative disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, _, err := sketch.DistanceByName(*dist); err != nil {
		return err
	}
	mode, err := persist.ParseFsyncMode(*fsyncMode)
	if err != nil {
		return err
	}
	if *maxBody <= 0 {
		return fmt.Errorf("-max-body must be positive, got %d", *maxBody)
	}
	srv := newServer(config{k: *k, z: *z, budget: *budget, workers: *workers, dist: *dist, maxBody: *maxBody, fsync: mode.String()})
	srv.logger = logger

	if *persistDir != "" {
		store, err := persist.Open(*persistDir, persist.Options{
			Fsync:         mode,
			FsyncInterval: *fsyncInterval,
			CompactEvery:  *compactEvery,
		})
		if err != nil {
			return err
		}
		defer store.Close()
		srv.store = store
		recovered, err := store.Recover()
		if err != nil {
			return err
		}
		srv.adoptRecovered(recovered)
		logger.Printf("durability on: dir=%s fsync=%s compact-every=%d", store.Dir(), mode, *compactEvery)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.routes(), ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	logger.Printf("listening on %s (k=%d z=%d budget=%d distance=%s)", ln.Addr(), *k, *z, *budget, *dist)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	return nil
}

// streamCore is the surface shared by the plain and the outlier-aware
// streaming clusterers, windowed or not.
type streamCore interface {
	Observe(p kcenter.Point) error
	Centers() (kcenter.Dataset, error)
	Snapshot() ([]byte, error)
	Observed() int64
	WorkingMemory() int
}

// windowCore is the additional surface of sliding-window streams: timestamped
// ingest, explicit clock advances and live-window introspection.
type windowCore interface {
	streamCore
	ObserveAt(p kcenter.Point, ts int64) error
	Advance(ts int64) error
	LastTimestamp() int64
	LiveBuckets() int
	LivePoints() int64
}

// namedStream is one hosted stream. Its mutex serialises every access to the
// core: the streaming clusterers are not safe for concurrent use, so all
// ingest, extraction and snapshotting of one stream goes through here. gone
// is set (under mu) when the stream is deleted or replaced by a restore, so
// a handler that looked the stream up just before the swap fails loudly
// instead of acknowledging a write into an orphaned object.
type namedStream struct {
	mu      sync.Mutex
	core    streamCore
	k, z    int
	budget  int
	space   string
	winSize int64 // count window (0 = none)
	winDur  int64 // duration window (0 = none)
	dim     int   // fixed by the first batch (0 = not yet known)
	gone    bool

	// log is the stream's durability handle (nil without -persist-dir);
	// recovery carries the boot-time recovery stats of a recovered stream,
	// and compacting guards the single in-flight background compaction.
	log        *persist.Log
	recovery   *persist.RecoveryStats
	compacting bool
}

// errGone is returned to clients whose request lost a race with a delete or
// restore of the same stream; retrying observes the new state.
var errGone = errors.New("stream was deleted or replaced concurrently; retry")

type server struct {
	cfg    config
	store  *persist.Store // nil = in-memory only
	logger *log.Logger    // nil-safe via logf

	mu      sync.RWMutex
	streams map[string]*namedStream
}

func newServer(cfg config) *server {
	if cfg.budget <= 0 {
		cfg.budget = 8 * (cfg.k + cfg.z)
	}
	if cfg.dist == "" {
		cfg.dist = "euclidean"
	}
	if cfg.maxBody <= 0 {
		cfg.maxBody = maxBodyBytes
	}
	if cfg.fsync == "" {
		cfg.fsync = persist.FsyncAlways.String()
	}
	return &server{cfg: cfg, streams: make(map[string]*namedStream)}
}

func (s *server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /streams", s.handleList)
	mux.HandleFunc("GET /streams/{name}/stats", s.handleStats)
	mux.HandleFunc("POST /streams/{name}/points", s.handleIngest)
	mux.HandleFunc("POST /streams/{name}/advance", s.handleAdvance)
	mux.HandleFunc("GET /streams/{name}/centers", s.handleCenters)
	mux.HandleFunc("POST /streams/{name}/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /streams/{name}/restore", s.handleRestore)
	mux.HandleFunc("DELETE /streams/{name}", s.handleDelete)
	mux.HandleFunc("POST /merge", s.handleMerge)
	return http.MaxBytesHandler(mux, s.cfg.maxBody)
}

// newCore builds a streaming clusterer for the given parameters. The space
// name resolves to a full metric Space (batched kernels + surrogate), so
// ingest runs on the native hot path. Positive winSize/winDur select the
// sliding-window flavour.
func (s *server) newCore(spaceName string, k, z, budget int, winSize, winDur int64) (streamCore, error) {
	space, _, err := sketch.SpaceByName(spaceName)
	if err != nil {
		return nil, err
	}
	opts := []kcenter.Option{kcenter.WithSpace(space), kcenter.WithWorkers(s.cfg.workers)}
	if winSize > 0 || winDur > 0 {
		opts = append(opts, kcenter.WithWindowSize(int(winSize)), kcenter.WithWindowDuration(winDur))
		if z > 0 {
			return kcenter.NewWindowedOutliers(k, z, budget, opts...)
		}
		return kcenter.NewWindowedKCenter(k, budget, opts...)
	}
	if z > 0 {
		return kcenter.NewStreamingOutliers(k, z, budget, opts...)
	}
	return kcenter.NewStreamingKCenter(k, budget, opts...)
}

// flavourMismatch rejects window query parameters aimed at an existing
// insertion-only stream: silently dropping them would acknowledge ingest into
// a stream that never evicts, permanently locking the name to the wrong
// flavour. (winSize/winDur are set once at creation and never mutated, so
// reading them without the stream mutex is safe.)
func flavourMismatch(st *namedStream, r *http.Request) error {
	winSize, err := queryInt64(r, "window", 0)
	if err != nil {
		return err
	}
	winDur, err := queryInt64(r, "windowDur", 0)
	if err != nil {
		return err
	}
	if (winSize > 0 || winDur > 0) && st.winSize == 0 && st.winDur == 0 {
		return errors.New("stream already exists as insertion-only; ?window=/?windowDur= cannot convert it (delete and recreate)")
	}
	return nil
}

// getOrCreate returns the named stream, creating it with the request's (or
// the daemon's) parameters on first touch.
func (s *server) getOrCreate(name string, r *http.Request) (*namedStream, error) {
	s.mu.RLock()
	st, ok := s.streams[name]
	s.mu.RUnlock()
	if ok {
		if err := flavourMismatch(st, r); err != nil {
			return nil, err
		}
		return st, nil
	}
	k, err := queryInt(r, "k", s.cfg.k)
	if err != nil {
		return nil, err
	}
	z, err := queryInt(r, "z", s.cfg.z)
	if err != nil {
		return nil, err
	}
	budget, err := queryInt(r, "budget", 0)
	if err != nil {
		return nil, err
	}
	winSize, err := queryInt64(r, "window", 0)
	if err != nil {
		return nil, err
	}
	winDur, err := queryInt64(r, "windowDur", 0)
	if err != nil {
		return nil, err
	}
	if winSize < 0 || winDur < 0 {
		return nil, fmt.Errorf("window bounds must be non-negative (window=%d windowDur=%d)", winSize, winDur)
	}
	if budget <= 0 {
		if k == s.cfg.k && z == s.cfg.z {
			budget = s.cfg.budget
		} else {
			budget = 8 * (k + z)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.streams[name]; ok {
		// Lost the creation race; use the winner's stream (unless the window
		// parameters conflict with its flavour).
		if err := flavourMismatch(st, r); err != nil {
			return nil, err
		}
		return st, nil
	}
	core, err := s.newCore(s.cfg.dist, k, z, budget, winSize, winDur)
	if err != nil {
		return nil, err
	}
	st = &namedStream{core: core, k: k, z: z, budget: budget, space: s.cfg.dist, winSize: winSize, winDur: winDur}
	if s.store != nil {
		// Journal the creation before the name becomes visible. Holding s.mu
		// across the disk write serialises creation against a concurrent
		// DELETE of the same name (which tombstones the directory under
		// s.mu), so a re-create can never collide with a half-removed
		// directory. The cost — a couple of fsyncs under the server lock —
		// is paid once per stream NAME, never on the steady-state ingest
		// path, which only takes the read lock.
		lg, err := s.store.Create(name, streamMeta(st))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errPersistFailed, err)
		}
		st.log = lg
	}
	s.streams[name] = st
	return st, nil
}

// errPersistFailed marks stream-creation failures of the durability layer,
// so handlers report 500 internal instead of blaming the client's params.
var errPersistFailed = errors.New("durability layer failure")

// streamMeta derives the journaled metadata from a stream's parameters.
func streamMeta(st *namedStream) persist.Meta {
	return persist.Meta{
		K:              st.k,
		Z:              st.z,
		Budget:         st.budget,
		Space:          st.space,
		WindowSize:     st.winSize,
		WindowDuration: st.winDur,
	}
}

// adoptRecovered installs the streams the durability layer recovered at
// boot: restore the snapshot (or rebuild an empty core from the journaled
// metadata), verify the snapshot against the metadata, replay the log tail,
// and surface the recovery stats. Streams that fail above the persistence
// layer are set aside (directory renamed *.failed) so the name stays usable.
func (s *server) adoptRecovered(recovered []*persist.Recovered) {
	for _, rec := range recovered {
		if rec.Err != nil {
			s.logf("recovery: stream %q: %v (set aside)", rec.Name, rec.Err)
			continue
		}
		st, err := s.rebuildStream(rec)
		if err != nil {
			s.logf("recovery: stream %q: %v (set aside)", rec.Name, err)
			if saErr := rec.Log.SetAside(); saErr != nil {
				s.logf("recovery: stream %q: setting aside failed: %v", rec.Name, saErr)
			}
			continue
		}
		s.mu.Lock()
		s.streams[rec.Name] = st
		s.mu.Unlock()
		s.logf("recovered stream %q: snapshot=%v records=%d points=%d tornTail=%v",
			rec.Name, rec.Stats.SnapshotLoaded, rec.Stats.RecordsReplayed, rec.Stats.PointsReplayed, rec.Stats.TornTail)
	}
}

// rebuildStream revives one recovered stream: snapshot first, then the
// journal tail on top, exactly the order the records were acknowledged in.
func (s *server) rebuildStream(rec *persist.Recovered) (*namedStream, error) {
	var (
		core streamCore
		meta persist.Meta
		dim  int
		err  error
	)
	if rec.Snapshot != nil {
		var info *kcenter.SketchInfo
		core, info, err = s.restoreCore(rec.Snapshot)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		meta = persist.Meta{
			K:              info.K,
			Z:              info.Z,
			Budget:         info.Budget,
			Space:          info.Distance,
			WindowSize:     info.WindowSize,
			WindowDuration: info.WindowDuration,
		}
		// The snapshot must describe the stream the journal was written for:
		// a swapped or stale file silently changing k, the metric space or
		// the window geometry would corrupt every later answer.
		if rec.HaveMeta && meta != rec.Meta {
			return nil, fmt.Errorf("snapshot metadata %+v does not match journaled metadata %+v", meta, rec.Meta)
		}
		if !rec.HaveMeta {
			if err := rec.Log.AdoptMeta(meta); err != nil {
				return nil, err
			}
		}
		dim = info.Dimensions
	} else {
		meta = rec.Meta
		core, err = s.newCore(meta.Space, meta.K, meta.Z, meta.Budget, meta.WindowSize, meta.WindowDuration)
		if err != nil {
			return nil, err
		}
	}
	for i, r := range rec.Tail {
		switch r.Op {
		case persist.OpBatch:
			if r.Timestamps != nil {
				wc, ok := core.(windowCore)
				if !ok {
					return nil, fmt.Errorf("record %d: timestamped batch journaled for a non-window stream", i)
				}
				for j, p := range r.Points {
					if err := wc.ObserveAt(p, r.Timestamps[j]); err != nil {
						return nil, fmt.Errorf("record %d: replay: %w", i, err)
					}
				}
			} else {
				for _, p := range r.Points {
					if err := core.Observe(p); err != nil {
						return nil, fmt.Errorf("record %d: replay: %w", i, err)
					}
				}
			}
			if dim == 0 {
				dim = r.Points.Dim()
			}
		case persist.OpAdvance:
			wc, ok := core.(windowCore)
			if !ok {
				return nil, fmt.Errorf("record %d: advance journaled for a non-window stream", i)
			}
			if err := wc.Advance(r.AdvanceTo); err != nil {
				return nil, fmt.Errorf("record %d: replay: %w", i, err)
			}
		default:
			return nil, fmt.Errorf("record %d: unexpected op %v in replay tail", i, r.Op)
		}
	}
	stats := rec.Stats
	return &namedStream{
		core:     core,
		k:        meta.K,
		z:        meta.Z,
		budget:   meta.Budget,
		space:    meta.Space,
		winSize:  meta.WindowSize,
		winDur:   meta.WindowDuration,
		dim:      dim,
		log:      rec.Log,
		recovery: &stats,
	}, nil
}

func (s *server) lookup(name string) (*namedStream, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.streams[name]
	return st, ok
}

type ingestRequest struct {
	Points kcenter.Dataset `json:"points"`
	// Timestamps optionally carries one non-negative, non-decreasing int64
	// per point (window streams only), in the same caller-defined units as
	// the stream's ?windowDur= bound.
	Timestamps []int64 `json:"timestamps,omitempty"`
}

type windowStats struct {
	Size        int64 `json:"size,omitempty"`
	Duration    int64 `json:"duration,omitempty"`
	LiveBuckets int   `json:"liveBuckets"`
	LivePoints  int64 `json:"livePoints"`
}

// durabilityStats surfaces the stream's journal state and, for streams that
// survived a restart, what boot-time recovery did.
type durabilityStats struct {
	persist.LogStats
	Fsync    string                 `json:"fsync"`
	Recovery *persist.RecoveryStats `json:"recovery,omitempty"`
}

type streamStats struct {
	Name          string           `json:"name"`
	K             int              `json:"k"`
	Z             int              `json:"z"`
	Budget        int              `json:"budget"`
	Space         string           `json:"space"`
	Observed      int64            `json:"observed"`
	WorkingMemory int              `json:"workingMemory"`
	Window        *windowStats     `json:"window,omitempty"`
	Durability    *durabilityStats `json:"durability,omitempty"`
}

func (st *namedStream) statsLocked(name string, fsync string) streamStats {
	stats := streamStats{
		Name:          name,
		K:             st.k,
		Z:             st.z,
		Budget:        st.budget,
		Space:         st.space,
		Observed:      st.core.Observed(),
		WorkingMemory: st.core.WorkingMemory(),
	}
	if wc, ok := st.core.(windowCore); ok {
		stats.Window = &windowStats{
			Size:        st.winSize,
			Duration:    st.winDur,
			LiveBuckets: wc.LiveBuckets(),
			LivePoints:  wc.LivePoints(),
		}
	}
	if st.log != nil {
		stats.Durability = &durabilityStats{
			LogStats: st.log.Stats(),
			Fsync:    fsync,
			Recovery: st.recovery,
		}
	}
	return stats
}

// validateBatch enforces every precondition of an ingest batch BEFORE any
// point is applied, so a rejected batch never partially mutates the stream:
// non-empty, finite coordinates, rectangular dimensions, and (when present)
// one sorted non-negative timestamp per point.
func validateBatch(req *ingestRequest) (status int, code string, err error) {
	if len(req.Points) == 0 {
		return http.StatusBadRequest, codeEmptyBatch, errors.New("empty batch")
	}
	if err := req.Points.Validate(); err != nil {
		code := codeInvalidPoint
		if errors.Is(err, metric.ErrDimensionMismatch) {
			code = codeDimensionMismatch
		}
		return http.StatusBadRequest, code, err
	}
	if req.Points.Dim() == 0 {
		// Zero-dimension points would collide with the "dimension not yet
		// known" sentinel and poison later real batches.
		return http.StatusBadRequest, codeInvalidPoint, errors.New("points must have at least one coordinate")
	}
	if req.Timestamps != nil {
		if len(req.Timestamps) != len(req.Points) {
			return http.StatusBadRequest, codeInvalidTimestamps,
				fmt.Errorf("%d timestamps for %d points", len(req.Timestamps), len(req.Points))
		}
		for i, ts := range req.Timestamps {
			if ts < 0 {
				return http.StatusBadRequest, codeInvalidTimestamps, fmt.Errorf("timestamp %d is negative (%d)", i, ts)
			}
			if i > 0 && ts < req.Timestamps[i-1] {
				return http.StatusBadRequest, codeInvalidTimestamps,
					fmt.Errorf("timestamp %d (%d) precedes timestamp %d (%d)", i, ts, i-1, req.Timestamps[i-1])
			}
		}
	}
	return 0, "", nil
}

// decodeJSON strictly decodes a JSON request body: unknown fields are
// rejected, trailing data after the document is rejected, and a body over
// the -max-body cap maps to 413 body_too_large. It writes the error response
// itself and reports whether decoding succeeded.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, codeInvalidJSON, fmt.Errorf("invalid JSON body: %w", err))
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		httpError(w, http.StatusBadRequest, codeInvalidJSON, errors.New("trailing data after JSON body"))
		return false
	}
	return true
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if status, code, err := validateBatch(&req); err != nil {
		httpError(w, status, code, err)
		return
	}
	batch := req.Points
	name := r.PathValue("name")
	if req.Timestamps != nil {
		// Reject timestamps aimed at a non-window stream BEFORE getOrCreate
		// runs: otherwise a first ingest that forgot ?window= would create a
		// plain stream as a side effect of its own rejection, permanently
		// locking the name to the wrong flavour. (The locked re-check below
		// stays authoritative against creation races.)
		if st, ok := s.lookup(name); ok {
			if _, isWin := st.core.(windowCore); !isWin {
				httpError(w, http.StatusBadRequest, codeNotWindowed,
					errors.New("timestamps are only accepted by window streams (create with ?window= or ?windowDur=)"))
				return
			}
		} else {
			// == 0, not <= 0: explicitly negative bounds fall through to
			// getOrCreate's own validation and report invalid_param instead
			// of a misleading "add ?window=" hint.
			winSize, err1 := queryInt64(r, "window", 0)
			winDur, err2 := queryInt64(r, "windowDur", 0)
			if err1 == nil && err2 == nil && winSize == 0 && winDur == 0 {
				httpError(w, http.StatusBadRequest, codeNotWindowed,
					errors.New("timestamped batches need a window stream: create it with ?window= or ?windowDur="))
				return
			}
		}
	}
	st, err := s.getOrCreate(name, r)
	if err != nil {
		if errors.Is(err, errPersistFailed) {
			httpError(w, http.StatusInternalServerError, codeInternal, err)
		} else {
			httpError(w, http.StatusBadRequest, codeInvalidParam, err)
		}
		return
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.gone {
		httpError(w, http.StatusConflict, codeStreamGone, errGone)
		return
	}
	if st.dim != 0 && batch.Dim() != st.dim {
		httpError(w, http.StatusBadRequest, codeDimensionMismatch,
			fmt.Errorf("batch dimension %d does not match stream dimension %d", batch.Dim(), st.dim))
		return
	}
	if req.Timestamps != nil {
		wc, ok := st.core.(windowCore)
		if !ok {
			httpError(w, http.StatusBadRequest, codeNotWindowed,
				errors.New("timestamps are only accepted by window streams (create with ?window= or ?windowDur=)"))
			return
		}
		// The stream's clock only moves forward; checked up front so the
		// whole batch is rejected before any point lands — and before it is
		// journaled, so a record that would fail replay is never written.
		if last := wc.LastTimestamp(); req.Timestamps[0] < last {
			httpError(w, http.StatusBadRequest, codeInvalidTimestamps,
				fmt.Errorf("batch starts at timestamp %d, stream is already at %d", req.Timestamps[0], last))
			return
		}
	}
	// Journal, then apply: the batch has passed every validation that could
	// reject it, so the WAL record and the in-memory mutation stand or fall
	// together, and the acknowledgement below implies durability (per the
	// fsync mode).
	if st.log != nil {
		if err := st.log.AppendBatch(batch, req.Timestamps); err != nil {
			httpError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
	}
	if req.Timestamps != nil {
		wc := st.core.(windowCore)
		for i, p := range batch {
			if err := wc.ObserveAt(p, req.Timestamps[i]); err != nil {
				httpError(w, http.StatusInternalServerError, codeInternal, err)
				return
			}
		}
	} else {
		for _, p := range batch {
			if err := st.core.Observe(p); err != nil {
				httpError(w, http.StatusInternalServerError, codeInternal, err)
				return
			}
		}
	}
	st.dim = batch.Dim()
	s.maybeCompactLocked(st)
	writeJSON(w, http.StatusOK, st.statsLocked(r.PathValue("name"), s.cfg.fsync))
}

// maybeCompactLocked kicks off a background snapshot compaction when the
// stream's journal has grown past the threshold. Caller holds st.mu; at most
// one compaction per stream is in flight.
func (s *server) maybeCompactLocked(st *namedStream) {
	if st.log == nil || st.compacting || !st.log.ShouldCompact() {
		return
	}
	st.compacting = true
	go func() {
		st.mu.Lock()
		defer st.mu.Unlock()
		st.compacting = false
		if st.gone || st.log == nil {
			return
		}
		snap, err := st.core.Snapshot()
		if err != nil {
			s.logf("compaction: snapshot failed: %v", err)
			return
		}
		if err := st.log.Compact(snap); err != nil {
			s.logf("compaction: %v", err)
		}
	}()
}

// advanceRequest moves a window stream's clock forward without observing a
// point, evicting buckets that age out of a duration window.
type advanceRequest struct {
	To int64 `json:"to"`
}

func (s *server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req advanceRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	name := r.PathValue("name")
	st, ok := s.lookup(name)
	if !ok {
		httpError(w, http.StatusNotFound, codeUnknownStream, fmt.Errorf("unknown stream %q", name))
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.gone {
		httpError(w, http.StatusConflict, codeStreamGone, errGone)
		return
	}
	wc, ok := st.core.(windowCore)
	if !ok {
		httpError(w, http.StatusBadRequest, codeNotWindowed,
			errors.New("only window streams have a clock to advance"))
		return
	}
	// Validated before journaling, so a record that would fail replay is
	// never written.
	if req.To < 0 {
		httpError(w, http.StatusBadRequest, codeInvalidTimestamps, fmt.Errorf("advance target %d is negative", req.To))
		return
	}
	if last := wc.LastTimestamp(); req.To < last {
		httpError(w, http.StatusBadRequest, codeInvalidTimestamps,
			fmt.Errorf("advance target %d precedes the stream clock %d", req.To, last))
		return
	}
	if st.log != nil {
		if err := st.log.AppendAdvance(req.To); err != nil {
			httpError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
	}
	if err := wc.Advance(req.To); err != nil {
		httpError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	s.maybeCompactLocked(st)
	writeJSON(w, http.StatusOK, st.statsLocked(name, s.cfg.fsync))
}

// handleStats is the introspection endpoint: per-stream counters, working
// memory, space name and (for window streams) the live window state.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, ok := s.lookup(name)
	if !ok {
		httpError(w, http.StatusNotFound, codeUnknownStream, fmt.Errorf("unknown stream %q", name))
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.gone {
		httpError(w, http.StatusConflict, codeStreamGone, errGone)
		return
	}
	writeJSON(w, http.StatusOK, st.statsLocked(name, s.cfg.fsync))
}

type centersResponse struct {
	streamStats
	Centers kcenter.Dataset `json:"centers"`
}

func (s *server) handleCenters(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, ok := s.lookup(name)
	if !ok {
		httpError(w, http.StatusNotFound, codeUnknownStream, fmt.Errorf("unknown stream %q", name))
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.gone {
		httpError(w, http.StatusConflict, codeStreamGone, errGone)
		return
	}
	centers, err := st.core.Centers()
	if err != nil {
		// A window stream whose every bucket has been evicted has nothing to
		// answer with; other extraction failures are equally state conflicts.
		httpError(w, http.StatusConflict, codeEmptyStream, err)
		return
	}
	writeJSON(w, http.StatusOK, centersResponse{
		streamStats: st.statsLocked(name, s.cfg.fsync),
		Centers:     centers,
	})
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, ok := s.lookup(name)
	if !ok {
		httpError(w, http.StatusNotFound, codeUnknownStream, fmt.Errorf("unknown stream %q", name))
		return
	}
	st.mu.Lock()
	if st.gone {
		st.mu.Unlock()
		httpError(w, http.StatusConflict, codeStreamGone, errGone)
		return
	}
	snap, err := st.core.Snapshot()
	st.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(snap)
}

func (s *server) handleRestore(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, codeInvalidParam, err)
		return
	}
	core, info, err := s.restoreCore(data)
	if err != nil {
		httpError(w, http.StatusBadRequest, codeBadSketch, err)
		return
	}
	name := r.PathValue("name")
	st := &namedStream{
		core: core, k: info.K, z: info.Z, budget: info.Budget, dim: info.Dimensions,
		space: info.Distance, winSize: info.WindowSize, winDur: info.WindowDuration,
	}
	// Durable restore: the restored state becomes the stream's snapshot and
	// its journal starts fresh. The canonical re-snapshot (not the client's
	// bytes) is persisted so later compactions are byte-identical to it.
	var snap []byte
	if s.store != nil {
		if snap, err = core.Snapshot(); err != nil {
			httpError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
	}
	s.mu.Lock()
	if old, ok := s.streams[name]; ok {
		// Mark the replaced stream dead under its own mutex so a handler
		// that already looked it up fails with 409 instead of acknowledging
		// a write into the orphan. (Lock order server->stream is safe: no
		// handler acquires the server lock while holding a stream lock.)
		old.mu.Lock()
		old.gone = true
		if old.log != nil {
			// The old journal dies with the old state; Replace below writes
			// the new directory contents.
			if err := old.log.Remove(); err != nil {
				s.logf("restore: removing old journal of %q: %v", name, err)
			}
			old.log = nil
		}
		old.mu.Unlock()
	}
	if s.store != nil {
		lg, err := s.store.Replace(name, streamMeta(st), snap)
		if err != nil {
			// Neither the old nor the new state is trustworthy now; drop the
			// name entirely rather than serving a stream that will not
			// survive a restart.
			delete(s.streams, name)
			s.mu.Unlock()
			httpError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
		st.log = lg
	}
	s.streams[name] = st
	s.mu.Unlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	writeJSON(w, http.StatusOK, st.statsLocked(name, s.cfg.fsync))
}

// restoreCore revives a sketch of any kind — insertion-only or windowed,
// plain or outlier-aware — as a live stream.
func (s *server) restoreCore(data []byte) (streamCore, *kcenter.SketchInfo, error) {
	info, err := kcenter.InspectSketch(data)
	if err != nil {
		return nil, nil, err
	}
	var core streamCore
	switch {
	case info.Window && info.Outliers:
		core, err = kcenter.RestoreWindowedOutliers(data, kcenter.WithWorkers(s.cfg.workers))
	case info.Window:
		core, err = kcenter.RestoreWindowedKCenter(data, kcenter.WithWorkers(s.cfg.workers))
	case info.Outliers:
		core, err = kcenter.RestoreStreamingOutliers(data, kcenter.WithWorkers(s.cfg.workers))
	default:
		core, err = kcenter.RestoreStreamingKCenter(data, kcenter.WithWorkers(s.cfg.workers))
	}
	if err != nil {
		return nil, nil, err
	}
	return core, info, nil
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	st, ok := s.streams[name]
	delete(s.streams, name)
	var rmErr error
	if ok {
		// Tombstone the stream's directory while still holding the server
		// lock: creation of the same name also runs under s.mu, so a racing
		// re-create can never collide with the half-removed directory.
		// Taking st.mu (server->stream order, same as restore) makes the
		// delete wait for an in-flight append instead of yanking the journal
		// out from under it; handlers that already hold a stale pointer see
		// gone and answer 409. The map entry itself is removed above, so the
		// per-stream mutex is garbage-collected with the stream — the stream
		// table cannot accumulate mutexes for deleted names.
		st.mu.Lock()
		st.gone = true
		if st.log != nil {
			rmErr = st.log.Remove()
			st.log = nil
		}
		st.mu.Unlock()
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, codeUnknownStream, fmt.Errorf("unknown stream %q", name))
		return
	}
	if rmErr != nil {
		httpError(w, http.StatusInternalServerError, codeInternal,
			fmt.Errorf("stream dropped but its durable state could not be fully removed: %w", rmErr))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.streams))
	for name := range s.streams {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	out := make([]streamStats, 0, len(names))
	for _, name := range names {
		if st, ok := s.lookup(name); ok {
			st.mu.Lock()
			out = append(out, st.statsLocked(name, s.cfg.fsync))
			st.mu.Unlock()
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"streams": out})
}

type mergeRequest struct {
	Sketches []string `json:"sketches"`
}

type mergeResponse struct {
	Sketch   string          `json:"sketch"`
	Observed int64           `json:"observed"`
	Centers  kcenter.Dataset `json:"centers"`
}

func (s *server) handleMerge(w http.ResponseWriter, r *http.Request) {
	var req mergeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Sketches) == 0 {
		httpError(w, http.StatusBadRequest, codeEmptyBatch, errors.New("no sketches to merge"))
		return
	}
	blobs := make([][]byte, len(req.Sketches))
	for i, b64 := range req.Sketches {
		blob, err := base64.StdEncoding.DecodeString(b64)
		if err != nil {
			httpError(w, http.StatusBadRequest, codeBadSketch, fmt.Errorf("sketch %d: invalid base64: %w", i, err))
			return
		}
		blobs[i] = blob
	}
	merged, err := kcenter.MergeSketches(blobs...)
	if err != nil {
		httpError(w, http.StatusBadRequest, codeBadSketch, err)
		return
	}
	core, info, err := s.restoreCore(merged)
	if err != nil {
		httpError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	resp := mergeResponse{
		Sketch:   base64.StdEncoding.EncodeToString(merged),
		Observed: info.Observed,
	}
	if info.Observed > 0 {
		centers, err := core.Centers()
		if err != nil {
			httpError(w, http.StatusInternalServerError, codeInternal, err)
			return
		}
		resp.Centers = centers
	}
	writeJSON(w, http.StatusOK, resp)
}

func queryInt(r *http.Request, key string, fallback int) (int, error) {
	n, err := queryInt64(r, key, int64(fallback))
	if err != nil {
		return 0, err
	}
	if n < math.MinInt32 || n > math.MaxInt32 {
		return 0, fmt.Errorf("%s=%d out of range", key, n)
	}
	return int(n), nil
}

func queryInt64(r *http.Request, key string, fallback int64) (int64, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return fallback, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid %s=%q", key, v)
	}
	return n, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// errorResponse is the uniform error body: a human-readable message plus a
// stable machine-readable code clients can branch on.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func httpError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error(), Code: code})
}
