package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"

	"coresetclustering/internal/server/httpapi"
	"coresetclustering/internal/server/router"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "kcenterd:", err)
		os.Exit(1)
	}
}

// run extracts -role from the argument list before flag parsing (each role
// owns its own flag set, so the dispatcher cannot use a shared one) and hands
// the remaining arguments to the selected role.
func run(ctx context.Context, args []string, out io.Writer) error {
	role, rest, err := splitRole(args)
	if err != nil {
		return err
	}
	switch role {
	case "", "shard":
		return httpapi.Run(ctx, rest, out)
	case "router":
		return router.Run(ctx, rest, out)
	default:
		return fmt.Errorf("unknown -role %q (want shard or router)", role)
	}
}

// splitRole pulls the -role flag (in any of its spellings: -role=x, -role x,
// --role...) out of args, returning its value and the remaining arguments in
// order.
func splitRole(args []string) (role string, rest []string, err error) {
	rest = make([]string, 0, len(args))
	for i := 0; i < len(args); i++ {
		a := args[i]
		name := strings.TrimPrefix(strings.TrimPrefix(a, "-"), "-")
		switch {
		case !strings.HasPrefix(a, "-"):
			rest = append(rest, a)
		case name == "role":
			if i+1 >= len(args) {
				return "", nil, fmt.Errorf("flag needs an argument: -role")
			}
			i++
			role = args[i]
		case strings.HasPrefix(name, "role="):
			role = strings.TrimPrefix(name, "role=")
		default:
			rest = append(rest, a)
		}
	}
	return role, rest, nil
}
