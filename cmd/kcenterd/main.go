// Command kcenterd is a sharded-ingest daemon for streaming k-center
// clustering: it hosts named streams, each backed by the library's
// fixed-memory streaming clusterer, and exposes the sketch subsystem over
// HTTP so that independent shard daemons can snapshot their state and a
// coordinator can merge the sketches into a global summary.
//
// Endpoints:
//
//	GET    /healthz                      liveness probe
//	GET    /streams                      list streams and their stats
//	POST   /streams/{name}/points        batch ingest {"points": [[...], ...]}
//	GET    /streams/{name}/centers       extract the current k centers
//	POST   /streams/{name}/snapshot      serialize the stream (octet-stream)
//	POST   /streams/{name}/restore       recreate the stream from a sketch body
//	DELETE /streams/{name}               drop the stream
//	POST   /merge                        merge base64 sketches {"sketches": [...]}
//
// Streams are created on first ingest with the daemon's default parameters;
// ?k= &z= &budget= query parameters on that first request override them.
// Every handler takes the owning stream's mutex, so concurrent ingest into
// one stream is safe (and serialised), while distinct streams ingest in
// parallel. SIGINT/SIGTERM trigger a graceful shutdown that drains in-flight
// requests.
//
// Usage:
//
//	kcenterd -addr :8080 -k 20 -budget 320
//	kcenterd -addr :8080 -k 20 -z 100 -distance manhattan
package main

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"time"

	kcenter "coresetclustering"
	"coresetclustering/internal/sketch"
)

// maxBodyBytes bounds every request body (batches and sketches alike).
const maxBodyBytes = 64 << 20

func main() {
	if err := run(context.Background(), os.Args[1:], log.New(os.Stderr, "kcenterd: ", log.LstdFlags)); err != nil {
		fmt.Fprintln(os.Stderr, "kcenterd:", err)
		os.Exit(1)
	}
}

// config carries the daemon defaults applied to implicitly created streams.
type config struct {
	k       int
	z       int
	budget  int
	workers int
	dist    string
}

func run(ctx context.Context, args []string, logger *log.Logger) error {
	fs := flag.NewFlagSet("kcenterd", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		k       = fs.Int("k", 10, "default number of centers for new streams")
		z       = fs.Int("z", 0, "default number of outliers for new streams (0 = plain k-center)")
		budget  = fs.Int("budget", 0, "default working-memory budget in points (0 = 8*(k+z))")
		workers = fs.Int("workers", 0, "distance-engine parallelism for extraction (0 = one per CPU)")
		dist    = fs.String("distance", "euclidean", fmt.Sprintf("metric space %v", sketch.DistanceNames()))
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if _, _, err := sketch.DistanceByName(*dist); err != nil {
		return err
	}
	srv := newServer(config{k: *k, z: *z, budget: *budget, workers: *workers, dist: *dist})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.routes(), ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	logger.Printf("listening on %s (k=%d z=%d budget=%d distance=%s)", ln.Addr(), *k, *z, *budget, *dist)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	logger.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	return nil
}

// streamCore is the surface shared by the plain and the outlier-aware
// streaming clusterers.
type streamCore interface {
	Observe(p kcenter.Point) error
	Centers() (kcenter.Dataset, error)
	Snapshot() ([]byte, error)
	Observed() int64
	WorkingMemory() int
}

// namedStream is one hosted stream. Its mutex serialises every access to the
// core: the streaming clusterers are not safe for concurrent use, so all
// ingest, extraction and snapshotting of one stream goes through here. gone
// is set (under mu) when the stream is deleted or replaced by a restore, so
// a handler that looked the stream up just before the swap fails loudly
// instead of acknowledging a write into an orphaned object.
type namedStream struct {
	mu     sync.Mutex
	core   streamCore
	k, z   int
	budget int
	dim    int // fixed by the first batch (0 = not yet known)
	gone   bool
}

// errGone is returned to clients whose request lost a race with a delete or
// restore of the same stream; retrying observes the new state.
var errGone = errors.New("stream was deleted or replaced concurrently; retry")

type server struct {
	cfg config

	mu      sync.RWMutex
	streams map[string]*namedStream
}

func newServer(cfg config) *server {
	if cfg.budget <= 0 {
		cfg.budget = 8 * (cfg.k + cfg.z)
	}
	if cfg.dist == "" {
		cfg.dist = "euclidean"
	}
	return &server{cfg: cfg, streams: make(map[string]*namedStream)}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /streams", s.handleList)
	mux.HandleFunc("POST /streams/{name}/points", s.handleIngest)
	mux.HandleFunc("GET /streams/{name}/centers", s.handleCenters)
	mux.HandleFunc("POST /streams/{name}/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /streams/{name}/restore", s.handleRestore)
	mux.HandleFunc("DELETE /streams/{name}", s.handleDelete)
	mux.HandleFunc("POST /merge", s.handleMerge)
	return http.MaxBytesHandler(mux, maxBodyBytes)
}

// newCore builds a streaming clusterer for the given parameters. The
// configured name resolves to a full metric Space (batched kernels +
// surrogate), so ingest runs on the native hot path.
func (s *server) newCore(k, z, budget int) (streamCore, error) {
	space, _, err := sketch.SpaceByName(s.cfg.dist)
	if err != nil {
		return nil, err
	}
	opts := []kcenter.Option{kcenter.WithSpace(space), kcenter.WithWorkers(s.cfg.workers)}
	if z > 0 {
		return kcenter.NewStreamingOutliers(k, z, budget, opts...)
	}
	return kcenter.NewStreamingKCenter(k, budget, opts...)
}

// getOrCreate returns the named stream, creating it with the request's (or
// the daemon's) parameters on first touch.
func (s *server) getOrCreate(name string, r *http.Request) (*namedStream, error) {
	s.mu.RLock()
	st, ok := s.streams[name]
	s.mu.RUnlock()
	if ok {
		return st, nil
	}
	k, err := queryInt(r, "k", s.cfg.k)
	if err != nil {
		return nil, err
	}
	z, err := queryInt(r, "z", s.cfg.z)
	if err != nil {
		return nil, err
	}
	budget, err := queryInt(r, "budget", 0)
	if err != nil {
		return nil, err
	}
	if budget <= 0 {
		if k == s.cfg.k && z == s.cfg.z {
			budget = s.cfg.budget
		} else {
			budget = 8 * (k + z)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.streams[name]; ok {
		return st, nil // lost the creation race; use the winner's stream
	}
	core, err := s.newCore(k, z, budget)
	if err != nil {
		return nil, err
	}
	st = &namedStream{core: core, k: k, z: z, budget: budget}
	s.streams[name] = st
	return st, nil
}

func (s *server) lookup(name string) (*namedStream, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.streams[name]
	return st, ok
}

type ingestRequest struct {
	Points kcenter.Dataset `json:"points"`
}

type streamStats struct {
	Name          string `json:"name"`
	K             int    `json:"k"`
	Z             int    `json:"z"`
	Budget        int    `json:"budget"`
	Observed      int64  `json:"observed"`
	WorkingMemory int    `json:"workingMemory"`
}

func (st *namedStream) statsLocked(name string) streamStats {
	return streamStats{
		Name:          name,
		K:             st.k,
		Z:             st.z,
		Budget:        st.budget,
		Observed:      st.core.Observed(),
		WorkingMemory: st.core.WorkingMemory(),
	}
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err))
		return
	}
	if len(req.Points) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	batch := req.Points
	if err := batch.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if batch.Dim() == 0 {
		// Zero-dimension points would collide with the "dimension not yet
		// known" sentinel and poison later real batches.
		httpError(w, http.StatusBadRequest, errors.New("points must have at least one coordinate"))
		return
	}
	st, err := s.getOrCreate(r.PathValue("name"), r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.gone {
		httpError(w, http.StatusConflict, errGone)
		return
	}
	if st.dim != 0 && batch.Dim() != st.dim {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("batch dimension %d does not match stream dimension %d", batch.Dim(), st.dim))
		return
	}
	for _, p := range batch {
		if err := st.core.Observe(p); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
	}
	st.dim = batch.Dim()
	writeJSON(w, http.StatusOK, st.statsLocked(r.PathValue("name")))
}

type centersResponse struct {
	streamStats
	Centers kcenter.Dataset `json:"centers"`
}

func (s *server) handleCenters(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, ok := s.lookup(name)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown stream %q", name))
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.gone {
		httpError(w, http.StatusConflict, errGone)
		return
	}
	centers, err := st.core.Centers()
	if err != nil {
		httpError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, centersResponse{
		streamStats: st.statsLocked(name),
		Centers:     centers,
	})
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, ok := s.lookup(name)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown stream %q", name))
		return
	}
	st.mu.Lock()
	if st.gone {
		st.mu.Unlock()
		httpError(w, http.StatusConflict, errGone)
		return
	}
	snap, err := st.core.Snapshot()
	st.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	w.Write(snap)
}

func (s *server) handleRestore(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	core, info, err := s.restoreCore(data)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	name := r.PathValue("name")
	st := &namedStream{core: core, k: info.K, z: info.Z, budget: info.Budget, dim: info.Dimensions}
	s.mu.Lock()
	if old, ok := s.streams[name]; ok {
		// Mark the replaced stream dead under its own mutex so a handler
		// that already looked it up fails with 409 instead of acknowledging
		// a write into the orphan. (Lock order server->stream is safe: no
		// handler acquires the server lock while holding a stream lock.)
		old.mu.Lock()
		old.gone = true
		old.mu.Unlock()
	}
	s.streams[name] = st
	s.mu.Unlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	writeJSON(w, http.StatusOK, st.statsLocked(name))
}

// restoreCore revives a sketch of either kind as a live stream.
func (s *server) restoreCore(data []byte) (streamCore, *kcenter.SketchInfo, error) {
	info, err := kcenter.InspectSketch(data)
	if err != nil {
		return nil, nil, err
	}
	var core streamCore
	if info.Outliers {
		core, err = kcenter.RestoreStreamingOutliers(data, kcenter.WithWorkers(s.cfg.workers))
	} else {
		core, err = kcenter.RestoreStreamingKCenter(data, kcenter.WithWorkers(s.cfg.workers))
	}
	if err != nil {
		return nil, nil, err
	}
	return core, info, nil
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	st, ok := s.streams[name]
	delete(s.streams, name)
	s.mu.Unlock()
	if ok {
		st.mu.Lock()
		st.gone = true
		st.mu.Unlock()
	}
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown stream %q", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.streams))
	for name := range s.streams {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	out := make([]streamStats, 0, len(names))
	for _, name := range names {
		if st, ok := s.lookup(name); ok {
			st.mu.Lock()
			out = append(out, st.statsLocked(name))
			st.mu.Unlock()
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"streams": out})
}

type mergeRequest struct {
	Sketches []string `json:"sketches"`
}

type mergeResponse struct {
	Sketch   string          `json:"sketch"`
	Observed int64           `json:"observed"`
	Centers  kcenter.Dataset `json:"centers"`
}

func (s *server) handleMerge(w http.ResponseWriter, r *http.Request) {
	var req mergeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err))
		return
	}
	if len(req.Sketches) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("no sketches to merge"))
		return
	}
	blobs := make([][]byte, len(req.Sketches))
	for i, b64 := range req.Sketches {
		blob, err := base64.StdEncoding.DecodeString(b64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("sketch %d: invalid base64: %w", i, err))
			return
		}
		blobs[i] = blob
	}
	merged, err := kcenter.MergeSketches(blobs...)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	core, info, err := s.restoreCore(merged)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	resp := mergeResponse{
		Sketch:   base64.StdEncoding.EncodeToString(merged),
		Observed: info.Observed,
	}
	if info.Observed > 0 {
		centers, err := core.Centers()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		resp.Centers = centers
	}
	writeJSON(w, http.StatusOK, resp)
}

func queryInt(r *http.Request, key string, fallback int) (int, error) {
	v := r.URL.Query().Get(key)
	if v == "" {
		return fallback, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("invalid %s=%q", key, v)
	}
	return n, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
