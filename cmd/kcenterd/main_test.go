package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	kcenter "coresetclustering"
)

func newTestServer(t *testing.T, cfg config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(cfg).routes())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url string, body any, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp
}

func batch(points kcenter.Dataset) ingestRequest { return ingestRequest{Points: points} }

func blobs(n, dim int, seed int64) kcenter.Dataset {
	rng := rand.New(rand.NewSource(seed))
	out := make(kcenter.Dataset, n)
	for i := range out {
		p := make(kcenter.Point, dim)
		blob := float64(rng.Intn(5)) * 100
		for j := range p {
			p[j] = blob + rng.NormFloat64()
		}
		out[i] = p
	}
	return out
}

func TestIngestAndCenters(t *testing.T) {
	// budget deliberately != 8*(k+z): new streams must inherit the daemon's
	// configured default, not the derived fallback.
	ts := newTestServer(t, config{k: 3, budget: 30})
	var stats streamStats
	resp := doJSON(t, "POST", ts.URL+"/streams/demo/points", batch(blobs(500, 2, 1)), &stats)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if stats.Observed != 500 || stats.K != 3 || stats.Budget != 30 {
		t.Errorf("unexpected stats: %+v", stats)
	}
	if stats.WorkingMemory > 30 {
		t.Errorf("working memory %d exceeds budget", stats.WorkingMemory)
	}
	var centers centersResponse
	resp = doJSON(t, "GET", ts.URL+"/streams/demo/centers", nil, &centers)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("centers status %d", resp.StatusCode)
	}
	if len(centers.Centers) != 3 {
		t.Errorf("got %d centers, want 3", len(centers.Centers))
	}
}

func TestStreamParamsFromQuery(t *testing.T) {
	ts := newTestServer(t, config{k: 3, budget: 24})
	var stats streamStats
	doJSON(t, "POST", ts.URL+"/streams/custom/points?k=5&z=2&budget=70", batch(blobs(100, 2, 2)), &stats)
	if stats.K != 5 || stats.Z != 2 || stats.Budget != 70 {
		t.Errorf("query params ignored: %+v", stats)
	}
}

// TestConcurrentIngest hammers one stream from many goroutines (exercised
// under -race in CI): every point must be observed exactly once, and
// concurrent snapshot/centers calls must not corrupt the stream.
func TestConcurrentIngest(t *testing.T) {
	ts := newTestServer(t, config{k: 4, budget: 40})
	const (
		goroutines = 8
		batches    = 10
		perBatch   = 50
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				body, _ := json.Marshal(batch(blobs(perBatch, 3, int64(g*1000+b))))
				resp, err := http.Post(ts.URL+"/streams/shared/points", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("ingest status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	// Interleave reads and snapshots with the ingest.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			resp, err := http.Post(ts.URL+"/streams/shared/snapshot", "application/octet-stream", nil)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	wg.Wait()

	var stats centersResponse
	doJSON(t, "GET", ts.URL+"/streams/shared/centers", nil, &stats)
	if want := int64(goroutines * batches * perBatch); stats.Observed != want {
		t.Errorf("observed %d points, want %d", stats.Observed, want)
	}
	if len(stats.Centers) != 4 {
		t.Errorf("got %d centers, want 4", len(stats.Centers))
	}
}

// TestShardedMergeFlow drives the daemon the way a coordinator would: two
// shard streams, snapshot both over HTTP, merge, and check the merged
// summary accounts for every point.
func TestShardedMergeFlow(t *testing.T) {
	ts := newTestServer(t, config{k: 4, budget: 64})
	doJSON(t, "POST", ts.URL+"/streams/shard0/points", batch(blobs(600, 2, 10)), nil)
	doJSON(t, "POST", ts.URL+"/streams/shard1/points", batch(blobs(400, 2, 11)), nil)

	snapshot := func(name string) []byte {
		resp, err := http.Post(ts.URL+"/streams/"+name+"/snapshot", "application/octet-stream", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("snapshot %s: status %d", name, resp.StatusCode)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	s0, s1 := snapshot("shard0"), snapshot("shard1")

	var merged mergeResponse
	resp := doJSON(t, "POST", ts.URL+"/merge", mergeRequest{Sketches: []string{
		base64.StdEncoding.EncodeToString(s0),
		base64.StdEncoding.EncodeToString(s1),
	}}, &merged)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("merge status %d", resp.StatusCode)
	}
	if merged.Observed != 1000 {
		t.Errorf("merged sketch observed %d, want 1000", merged.Observed)
	}
	if len(merged.Centers) != 4 {
		t.Errorf("merged centers %d, want 4", len(merged.Centers))
	}

	// The merged sketch must be restorable as a live stream.
	mergedBlob, err := base64.StdEncoding.DecodeString(merged.Sketch)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/streams/global/restore", bytes.NewReader(mergedBlob))
	if err != nil {
		t.Fatal(err)
	}
	restoreResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var restored streamStats
	if err := json.NewDecoder(restoreResp.Body).Decode(&restored); err != nil {
		t.Fatal(err)
	}
	restoreResp.Body.Close()
	if restored.Observed != 1000 {
		t.Errorf("restored stream observed %d, want 1000", restored.Observed)
	}
	// And it keeps ingesting.
	var after streamStats
	doJSON(t, "POST", ts.URL+"/streams/global/points", batch(blobs(10, 2, 12)), &after)
	if after.Observed != 1010 {
		t.Errorf("restored stream observed %d after ingest, want 1010", after.Observed)
	}
}

func TestListAndDelete(t *testing.T) {
	ts := newTestServer(t, config{k: 2, budget: 16})
	doJSON(t, "POST", ts.URL+"/streams/a/points", batch(blobs(10, 2, 20)), nil)
	doJSON(t, "POST", ts.URL+"/streams/b/points", batch(blobs(10, 2, 21)), nil)
	var list struct {
		Streams []streamStats `json:"streams"`
	}
	doJSON(t, "GET", ts.URL+"/streams", nil, &list)
	if len(list.Streams) != 2 || list.Streams[0].Name != "a" || list.Streams[1].Name != "b" {
		t.Errorf("unexpected listing: %+v", list.Streams)
	}
	if resp := doJSON(t, "DELETE", ts.URL+"/streams/a", nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("delete status %d", resp.StatusCode)
	}
	if resp := doJSON(t, "DELETE", ts.URL+"/streams/a", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("second delete status %d, want 404", resp.StatusCode)
	}
}

func TestErrorResponses(t *testing.T) {
	ts := newTestServer(t, config{k: 3, budget: 24})
	cases := []struct {
		name   string
		do     func() *http.Response
		status int
	}{
		{"centers-of-unknown-stream", func() *http.Response {
			return doJSON(t, "GET", ts.URL+"/streams/nope/centers", nil, nil)
		}, http.StatusNotFound},
		{"snapshot-of-unknown-stream", func() *http.Response {
			return doJSON(t, "POST", ts.URL+"/streams/nope/snapshot", nil, nil)
		}, http.StatusNotFound},
		{"invalid-json", func() *http.Response {
			resp, err := http.Post(ts.URL+"/streams/x/points", "application/json", bytes.NewReader([]byte("{")))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp
		}, http.StatusBadRequest},
		{"empty-batch", func() *http.Response {
			return doJSON(t, "POST", ts.URL+"/streams/x/points", batch(nil), nil)
		}, http.StatusBadRequest},
		{"out-of-range-number", func() *http.Response {
			resp, err := http.Post(ts.URL+"/streams/x/points", "application/json",
				bytes.NewReader([]byte(`{"points": [[1, 1e999]]}`)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp
		}, http.StatusBadRequest},
		{"restore-garbage", func() *http.Response {
			resp, err := http.Post(ts.URL+"/streams/x/restore", "application/octet-stream",
				bytes.NewReader([]byte("definitely not a sketch")))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp
		}, http.StatusBadRequest},
		{"merge-nothing", func() *http.Response {
			return doJSON(t, "POST", ts.URL+"/merge", mergeRequest{}, nil)
		}, http.StatusBadRequest},
		{"merge-bad-base64", func() *http.Response {
			return doJSON(t, "POST", ts.URL+"/merge", mergeRequest{Sketches: []string{"!!!"}}, nil)
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if resp := tc.do(); resp.StatusCode != tc.status {
				t.Errorf("status %d, want %d", resp.StatusCode, tc.status)
			}
		})
	}
}

func TestDimensionMismatchRejected(t *testing.T) {
	ts := newTestServer(t, config{k: 2, budget: 16})
	doJSON(t, "POST", ts.URL+"/streams/d/points", batch(kcenter.Dataset{{1, 2}, {3, 4}}), nil)
	resp := doJSON(t, "POST", ts.URL+"/streams/d/points", batch(kcenter.Dataset{{1, 2, 3}}), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched batch status %d, want 400", resp.StatusCode)
	}
	// In-batch mismatch too.
	resp = doJSON(t, "POST", ts.URL+"/streams/d/points", batch(kcenter.Dataset{{1, 2}, {3}}), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ragged batch status %d, want 400", resp.StatusCode)
	}
}

// TestRunGracefulShutdown boots the real daemon on an ephemeral port and
// checks that cancelling the context shuts it down cleanly.
func TestRunGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-k", "2"}, log.New(io.Discard, "", 0))
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after cancel, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down within 5s")
	}
}

func TestRunRejectsUnknownDistance(t *testing.T) {
	err := run(context.Background(), []string{"-distance", "warp"}, log.New(io.Discard, "", 0))
	if err == nil {
		t.Fatal("run accepted an unknown distance")
	}
	if got := fmt.Sprint(err); got == "" {
		t.Error("empty error")
	}
}
