// Command kcenterd is a sharded-ingest daemon for streaming k-center
// clustering: it hosts named streams, each backed by the library's
// fixed-memory streaming clusterer, and exposes the sketch subsystem over
// HTTP so that independent shard daemons can snapshot their state and a
// coordinator can merge the sketches into a global summary.
//
// Endpoints:
//
//	GET    /healthz                      liveness probe (503 + failed-stream list when degraded)
//	GET    /metrics                      Prometheus text exposition (global + per-stream series)
//	GET    /streams                      list streams and their stats (including failed ones)
//	GET    /streams/{name}/stats         introspect one stream (counts, memory, window, durability)
//	POST   /streams/{name}/points        batch ingest, JSON or binary (negotiated by Content-Type)
//	POST   /streams/{name}/ingest        alias for /points (same negotiated handler)
//	POST   /streams/{name}/advance       move a window stream's clock: {"to": ts}
//	GET    /streams/{name}/centers       extract the current k centers
//	POST   /streams/{name}/snapshot      serialize the stream (octet-stream)
//	POST   /streams/{name}/restore       recreate the stream from a sketch body
//	DELETE /streams/{name}               drop the stream
//	POST   /merge                        merge base64 sketches {"sketches": [...]}
//
// Streams are created on first ingest with the daemon's default parameters;
// ?k= &z= &budget= query parameters on that first request override them.
// ?window=N and/or ?windowDur=D make the stream a sliding-window one: it
// summarises only the last N points and/or the last D timestamp ticks, with
// whole buckets evicted automatically as they age out. Window streams accept
// an optional "timestamps" array alongside "points" (one non-negative,
// non-decreasing int64 per point, in the same caller-defined units as
// ?windowDur=); batches without timestamps reuse the newest observed one.
// Snapshots of window streams carry the full window state (magic KCWN) and
// restore to live window streams; window sketches cannot be merged.
//
// Ingest speaks two wire encodings, negotiated by Content-Type. JSON
// ({"points": [[...], ...], "timestamps": [...]}) is the default; a
// Content-Type of application/x-kcenter-flat switches the body to the KCFL
// binary flat frame — a 20-byte header (magic, version, dimension, count)
// followed by big-endian float64 coordinates, optionally trailed by a KCTS
// block of per-point int64 timestamps for window streams. A .kcf dataset
// file is a valid frame body verbatim. Binary frames decode directly into
// the clusterer's flat point layout with no per-point allocation and are
// validated as strictly as JSON (a malformed frame is a 400 invalid_frame,
// an unrecognised Content-Type a 415 unsupported_media_type); the two
// encodings are state-equivalent — the same points yield byte-identical
// snapshots either way. cmd/kcenterload generates load in both encodings
// and reports measured throughput and ack latency.
//
// With -persist-dir set, every stream is durable: stream creation, ingest
// batches and clock advances are journaled to a per-stream write-ahead log
// (fsynced per -fsync) before they are acknowledged — under -fsync=always,
// concurrent appends coalesce into shared group-commit fsyncs (-group-commit,
// on by default) without weakening the guarantee — the stream state is
// periodically compacted into a snapshot via the sketch codecs (-compact-every
// journaled records), and on boot the daemon recovers every stream by loading
// its newest valid snapshot and replaying the log tail — a recovered stream's
// re-snapshot is byte-identical to an uninterrupted run's. DELETE tombstones
// the stream's directory; restore replaces it atomically. Per-stream recovery
// and journal statistics are surfaced on GET /streams/{name}/stats.
//
// Error responses are typed: {"error": ..., "code": ...} where code is a
// stable machine-readable identifier (invalid_point, dimension_mismatch,
// invalid_timestamps, unknown_stream, invalid_frame, unsupported_media_type,
// body_too_large, ...). Batches are
// validated before any point is applied, so a rejected batch (NaN/Inf
// coordinates, ragged or mismatched dimensions, bad timestamps) never
// perturbs stream state. JSON bodies are decoded strictly: unknown fields
// and trailing data are invalid_json, and a body over -max-body bytes is a
// 413 body_too_large.
//
// Writes to one stream (ingest, advance) serialise on the stream's ingest
// mutex, while reads are wait-free: every acknowledged write publishes an
// immutable copy-on-write query view (cloning the clusterer costs O(budget)
// for insertion-only streams and O(log window) shared bucket pointers for
// window streams), and GET /centers, /stats and /snapshot answer from the
// newest published view without ever touching the ingest mutex — a query
// never stalls behind an in-flight batch, fsync or compaction. Reads are
// snapshot-isolated: a reader always observes the state exactly as of some
// acknowledged batch boundary (the view's "version", a per-process counter of
// applied mutations surfaced in stats), never a torn mid-batch state. Each
// view memoises its extraction and snapshot, so repeated queries at an
// unchanged version are cache hits — byte-identical to a fresh extraction,
// with hit/miss counters in stats — and the cache dies with the view, so
// invalidation is automatic. Distinct streams ingest in parallel.
// SIGINT/SIGTERM trigger a graceful shutdown that drains in-flight requests
// and flushes the journals.
//
// The daemon is observable end to end. Every request carries an
// X-Request-ID (assigned if the client did not send a well-formed one, and
// echoed back) that tags its structured log lines; logs are levelled
// key=value records on stderr, filtered by -log-level, and any request
// slower than -slow-request (default 1s, 0 disables) is logged at warn
// with its route, status and duration. GET /metrics serves Prometheus
// text exposition: per-route×status HTTP counters and latency histograms,
// ingest/eviction/view-publish/cache counters, WAL append/fsync/compaction/
// recovery timings, plus per-stream gauges (observed points, working
// memory, version) rendered from published query views — the scrape never
// touches an ingest mutex. Per-stream series are capped at -obs-max-streams
// streams (alphabetically; a kcenterd_streams_omitted gauge counts the
// rest).
//
// Every request is also traced as a span tree — decode, validate, journal,
// group-commit wait, apply and publish on the ingest path; extraction with
// cache attribution on queries; background traces for compaction, recovery
// and the interval flusher. An inbound W3C traceparent header joins the
// caller's trace and every response echoes its trace ID as X-Trace-ID.
// Traces are recorded always but retained selectively: a deterministic 1 in
// -trace-sample requests (default 16), plus every slow or 5xx request
// regardless of sampling, kept in a ring of -trace-buffer traces (default
// 256; 0 disables tracing). The slow-request warn log carries the trace ID
// and per-stage breakdown (stages="decode=… journal=…"), and retained
// traces are served as JSON at /debug/traces (list, ?route= and ?minDur=
// filters) and /debug/traces/{id} (full span tree) on the debug listener.
//
// -debug-addr starts a separate listener with net/http/pprof, expvar and
// the /debug/traces surface; all three are off unless that flag is set and
// never ride the ingest port.
//
// The binary hosts two roles, selected by -role. The default, -role=shard,
// is the single-node daemon described above. -role=router starts the first
// multi-node role: a stateless coordinator that hash-partitions ingest
// batches across a fixed set of shard daemons (-shards, comma-separated
// addresses) with per-shard retries, probes shard health into /healthz and
// /metrics, and periodically pulls shard snapshots and merges them — the
// paper's round-2 composition — into a cached cluster-wide view served at
// /streams/{name}/centers, /stats and /snapshot. See the README's "Cluster"
// section for topology and consistency caveats.
//
// Architecture: the daemon is three layers. internal/server/engine owns all
// state and semantics — the stream table, ingest/advance application,
// published query views, journaling and recovery against internal/persist,
// and sketch merging — behind a transport-agnostic API with typed errors and
// no HTTP dependency. internal/server/httpapi is the HTTP transport: routing,
// JSON/binary wire negotiation, the mapping from engine error codes to
// status codes, and request observability middleware; the router role
// (internal/server/router) reuses its wire codecs and debug surface. This
// package is only the assembler: it parses -role and hands the remaining
// flags to the chosen role's Run function.
//
// Usage:
//
//	kcenterd -addr :8080 -k 20 -budget 320
//	kcenterd -addr :8080 -k 20 -z 100 -distance manhattan
//	kcenterd -addr :8080 -persist-dir /var/lib/kcenterd -fsync always
//	kcenterd -addr :8080 -debug-addr 127.0.0.1:6060 -slow-request 250ms -log-level debug
//	kcenterd -role=router -addr :9090 -shards localhost:8081,localhost:8082 -merge-interval 2s
package main
