// Command datagen generates the synthetic datasets used throughout this
// repository (Higgs-, Power- and Wiki-like families), optionally injecting
// outliers and inflating the instance SMOTE-style, and writes the result as
// CSV (default) or as the binary flat-buffer layout that metric.Flat loads
// into one contiguous buffer (-layout flat).
//
// Usage:
//
//	datagen -family higgs -n 100000 -outliers 200 -inflate 1 -seed 42 -out higgs.csv
//	datagen -family higgs -n 1000000 -layout flat -out higgs.kcfl
package main

import (
	"flag"
	"fmt"
	"os"

	"coresetclustering/internal/dataset"
	"coresetclustering/internal/metric"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		family   = fs.String("family", "higgs", "dataset family: higgs, power or wiki")
		n        = fs.Int("n", 10000, "number of points to generate")
		seed     = fs.Int64("seed", 42, "random seed")
		outliers = fs.Int("outliers", 0, "number of far outliers to inject (paper's 100*r_MEB procedure)")
		inflate  = fs.Int("inflate", 1, "SMOTE-like inflation factor (1 = none)")
		out      = fs.String("out", "", "output file (default: stdout)")
		layout   = fs.String("layout", "csv", "output layout: csv (text) or flat (binary flat-buffer, loadable by metric.Flat and the kcenter CLI)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ds, err := dataset.Generate(dataset.Name(*family), *n, *seed)
	if err != nil {
		return err
	}
	if *inflate > 1 {
		ds, err = dataset.Inflate(ds, *inflate, *seed+1)
		if err != nil {
			return err
		}
	}
	if *outliers > 0 {
		inj, err := dataset.InjectOutliers(ds, *outliers, *seed+2)
		if err != nil {
			return err
		}
		ds = inj.Points
		fmt.Fprintf(os.Stderr, "injected %d outliers at distance 100*r_MEB (r_MEB = %.4g)\n",
			len(inj.OutlierIndices), inj.MEBRadius)
	}

	switch *layout {
	case "csv":
		if *out == "" {
			return dataset.WriteCSV(os.Stdout, ds)
		}
		if err := dataset.SaveCSVFile(*out, ds); err != nil {
			return err
		}
	case "flat":
		if *out == "" {
			f, err := metric.FlatFromDataset(ds)
			if err != nil {
				return err
			}
			_, err = f.WriteTo(os.Stdout)
			return err
		}
		if err := dataset.SaveFlatFile(*out, ds); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown layout %q (want csv or flat)", *layout)
	}
	fmt.Fprintf(os.Stderr, "wrote %d points (%d dims) to %s (%s layout)\n", len(ds), ds.Dim(), *out, *layout)
	return nil
}
