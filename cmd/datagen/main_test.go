package main

import (
	"path/filepath"
	"testing"

	"coresetclustering/internal/dataset"
)

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "points.csv")
	err := run([]string{"-family", "power", "-n", "250", "-outliers", "5", "-inflate", "2", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.LoadCSVFile(out)
	if err != nil {
		t.Fatal(err)
	}
	// 250 points inflated x2 plus 5 outliers.
	if len(ds) != 505 {
		t.Errorf("generated %d points, want 505", len(ds))
	}
	if ds.Dim() != 7 {
		t.Errorf("dimension = %d, want 7", ds.Dim())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-family", "bogus", "-n", "10"}); err == nil {
		t.Error("unknown family accepted")
	}
	if err := run([]string{"-n", "0"}); err == nil {
		t.Error("n=0 accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-family", "higgs", "-n", "10", "-out", "/no/such/dir/x.csv"}); err == nil {
		t.Error("unwritable output accepted")
	}
}

func TestRunWritesFlatLayout(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "points.kcfl")
	if err := run([]string{"-family", "higgs", "-n", "200", "-layout", "flat", "-out", out}); err != nil {
		t.Fatal(err)
	}
	// The flat binary round-trips through the generic loader...
	ds, err := dataset.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 200 {
		t.Errorf("flat file holds %d points, want 200", len(ds))
	}
	// ...and matches the CSV output of the same generation coordinate for
	// coordinate.
	csvOut := filepath.Join(dir, "points.csv")
	if err := run([]string{"-family", "higgs", "-n", "200", "-out", csvOut}); err != nil {
		t.Fatal(err)
	}
	want, err := dataset.LoadFile(csvOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(ds) {
		t.Fatalf("flat and CSV outputs differ in size: %d vs %d", len(ds), len(want))
	}
	for i := range want {
		if !want[i].Equal(ds[i]) {
			t.Fatalf("point %d differs between flat and CSV layouts", i)
		}
	}
	if err := run([]string{"-family", "higgs", "-n", "10", "-layout", "bogus", "-out", out}); err == nil {
		t.Error("unknown layout accepted")
	}
}
