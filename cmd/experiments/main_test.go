package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseDatasets(t *testing.T) {
	names, err := parseDatasets("higgs, wiki")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("parsed %d names, want 2", len(names))
	}
	if _, err := parseDatasets("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
	if names, err := parseDatasets("  "); err != nil || names != nil {
		t.Errorf("blank input: %v %v", names, err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-figure", "1"}, &out); err == nil {
		t.Error("figure 1 accepted")
	}
	if err := run([]string{"-figure", "9"}, &out); err == nil {
		t.Error("figure 9 accepted")
	}
	if err := run([]string{"-scale", "0"}, &out); err == nil {
		t.Error("scale 0 accepted")
	}
	if err := run([]string{"-datasets", "bogus"}, &out); err == nil {
		t.Error("bogus dataset accepted")
	}
	if err := run([]string{"-nosuchflag"}, &out); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestRunSingleFigureSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping end-to-end experiment run in -short mode")
	}
	var out bytes.Buffer
	// Figure 3 at a tiny scale on a single dataset finishes in a few seconds.
	err := run([]string{"-figure", "3", "-datasets", "higgs", "-runs", "1", "-scale", "0.1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Figure 3") || !strings.Contains(s, "CoresetStream") {
		t.Errorf("unexpected output:\n%s", s)
	}
}
