// Command experiments reproduces the evaluation section of the paper: one
// table per figure (Figures 2-8), printed in the same rows/series layout the
// paper plots.
//
// Usage:
//
//	experiments                      # run every figure at laptop-scale defaults
//	experiments -figure 4            # run only Figure 4
//	experiments -figure 2 -datasets higgs,wiki -runs 10 -scale 4
//
// The -scale flag multiplies the default dataset sizes; the defaults finish
// in a few minutes on a laptop, -scale 10 or more approaches the paper's
// regime (given time and memory).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"coresetclustering/internal/dataset"
	"coresetclustering/internal/experiments"
	"coresetclustering/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		figure   = fs.Int("figure", 0, "figure to reproduce (2-8); 0 runs all")
		datasets = fs.String("datasets", "", "comma-separated dataset families (higgs,power,wiki); empty = all")
		runs     = fs.Int("runs", 0, "repetitions per configuration (0 = default)")
		scale    = fs.Float64("scale", 1, "multiplier applied to the default dataset sizes")
		seed     = fs.Int64("seed", 0, "base random seed (0 = per-figure defaults)")
		workers  = fs.Int("workers", 0, "distance-engine parallelism for the MapReduce figures (0 = one worker per CPU, 1 = sequential; radii are identical for any value)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The timing figures (6 and 7) pin Workers to 1 by default; an explicit
	// -workers flag — including -workers 0 for one-per-CPU — overrides every
	// figure's default, so presence matters, not just the value.
	workersSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			workersSet = true
		}
	})
	applyWorkers := func(dst *int) {
		if workersSet {
			*dst = *workers
		}
	}
	if *figure != 0 && (*figure < 2 || *figure > 8) {
		return fmt.Errorf("figure must be between 2 and 8 (or 0 for all), got %d", *figure)
	}
	if *scale <= 0 {
		return fmt.Errorf("scale must be positive, got %v", *scale)
	}
	names, err := parseDatasets(*datasets)
	if err != nil {
		return err
	}

	type job struct {
		num int
		run func() (renderable, error)
	}
	scaleN := func(n int) int {
		s := int(float64(n) * *scale)
		if s < 1 {
			s = 1
		}
		return s
	}
	jobs := []job{
		{2, func() (renderable, error) {
			cfg := experiments.DefaultFigure2Config()
			applyCommon(&cfg.Datasets, &cfg.Runs, &cfg.Seed, names, *runs, *seed)
			cfg.N = scaleN(cfg.N)
			applyWorkers(&cfg.Workers)
			return experiments.RunFigure2(cfg)
		}},
		{3, func() (renderable, error) {
			cfg := experiments.DefaultFigure3Config()
			applyCommon(&cfg.Datasets, &cfg.Runs, &cfg.Seed, names, *runs, *seed)
			cfg.N = scaleN(cfg.N)
			return experiments.RunFigure3(cfg)
		}},
		{4, func() (renderable, error) {
			cfg := experiments.DefaultFigure4Config()
			applyCommon(&cfg.Datasets, &cfg.Runs, &cfg.Seed, names, *runs, *seed)
			cfg.N = scaleN(cfg.N)
			applyWorkers(&cfg.Workers)
			return experiments.RunFigure4(cfg)
		}},
		{5, func() (renderable, error) {
			cfg := experiments.DefaultFigure5Config()
			applyCommon(&cfg.Datasets, &cfg.Runs, &cfg.Seed, names, *runs, *seed)
			cfg.N = scaleN(cfg.N)
			return experiments.RunFigure5(cfg)
		}},
		{6, func() (renderable, error) {
			cfg := experiments.DefaultFigure6Config()
			applyCommon(&cfg.Datasets, &cfg.Runs, &cfg.Seed, names, *runs, *seed)
			cfg.BaseN = scaleN(cfg.BaseN)
			applyWorkers(&cfg.Workers)
			return experiments.RunFigure6(cfg)
		}},
		{7, func() (renderable, error) {
			cfg := experiments.DefaultFigure7Config()
			applyCommon(&cfg.Datasets, &cfg.Runs, &cfg.Seed, names, *runs, *seed)
			cfg.N = scaleN(cfg.N)
			applyWorkers(&cfg.Workers)
			return experiments.RunFigure7(cfg)
		}},
		{8, func() (renderable, error) {
			cfg := experiments.DefaultFigure8Config()
			applyCommon(&cfg.Datasets, &cfg.Runs, &cfg.Seed, names, *runs, *seed)
			cfg.SampleN = scaleN(cfg.SampleN)
			return experiments.RunFigure8(cfg)
		}},
	}

	for _, j := range jobs {
		if *figure != 0 && j.num != *figure {
			continue
		}
		start := time.Now()
		res, err := j.run()
		if err != nil {
			return fmt.Errorf("figure %d: %w", j.num, err)
		}
		if err := res.Table().Render(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "(figure %d completed in %v)\n\n", j.num, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// renderable is satisfied by every figure result.
type renderable interface {
	Table() *stats.Table
}

func applyCommon(datasets *[]dataset.Name, runs *int, seed *int64, names []dataset.Name, wantRuns int, wantSeed int64) {
	if len(names) > 0 {
		*datasets = names
	}
	if wantRuns > 0 {
		*runs = wantRuns
	}
	if wantSeed != 0 {
		*seed = wantSeed
	}
}

func parseDatasets(s string) ([]dataset.Name, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []dataset.Name
	for _, part := range strings.Split(s, ",") {
		name := dataset.Name(strings.TrimSpace(strings.ToLower(part)))
		switch name {
		case dataset.Higgs, dataset.Power, dataset.Wiki:
			out = append(out, name)
		default:
			return nil, fmt.Errorf("unknown dataset %q (want higgs, power or wiki)", part)
		}
	}
	return out, nil
}
