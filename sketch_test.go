package kcenter

// Public-API tests for the sketch subsystem: snapshot/restore round-trips,
// the end-to-end sharded flow (split -> snapshot -> merge -> extract), its
// quality bound against the sequential Gonzalez baseline, and the
// determinism contract (worker-count invariance, argument-order-fixed
// merges).

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestSketchSnapshotRestoreRoundTrip(t *testing.T) {
	ds := clusteredTestData(5000, 4, 8, 31)
	s, err := NewStreamingKCenter(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveAll(ds[:3000]); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Restoring and re-snapshotting is byte-identical (the codec is golden).
	restored, err := RestoreStreamingKCenter(snap)
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, snap2) {
		t.Error("snapshot -> restore -> snapshot is not byte-identical")
	}

	// A restored stream is fully live: feeding the rest of the stream into
	// both the original and the restored copy must agree exactly.
	if err := s.ObserveAll(ds[3000:]); err != nil {
		t.Fatal(err)
	}
	if err := restored.ObserveAll(ds[3000:]); err != nil {
		t.Fatal(err)
	}
	if s.Observed() != restored.Observed() {
		t.Fatalf("observed counts diverge: %d vs %d", s.Observed(), restored.Observed())
	}
	want, err := s.Centers()
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Centers()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("%d centers vs %d", len(got), len(want))
	}
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Errorf("center %d differs after restore: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestShardedSnapshotMergeExtract is the end-to-end acceptance scenario:
// split a dataset across 4 shards, Snapshot each, MergeSketches, extract k
// centers — the radius must be within (2+eps) of the sequential Gonzalez
// radius, and the output must be byte-identical for 1, 2 and 8 workers.
func TestShardedSnapshotMergeExtract(t *testing.T) {
	const (
		k      = 10
		shards = 4
		budget = 16 * k
	)
	ds := clusteredTestData(12000, 4, 10, 37)

	snaps := make([][]byte, shards)
	for i := 0; i < shards; i++ {
		s, err := NewStreamingKCenter(k, budget)
		if err != nil {
			t.Fatal(err)
		}
		for j := i; j < len(ds); j += shards {
			if err := s.Observe(ds[j]); err != nil {
				t.Fatal(err)
			}
		}
		if snaps[i], err = s.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}

	merged, err := MergeSketches(snaps...)
	if err != nil {
		t.Fatal(err)
	}
	// Merging is deterministic: same arguments, byte-identical output.
	merged2, err := MergeSketches(snaps...)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, merged2) {
		t.Error("MergeSketches is not deterministic for identical arguments")
	}

	info, err := InspectSketch(merged)
	if err != nil {
		t.Fatal(err)
	}
	if info.Observed != int64(len(ds)) {
		t.Errorf("merged sketch observed %d points, want %d", info.Observed, len(ds))
	}
	if info.CoresetSize > budget {
		t.Errorf("merged coreset %d exceeds budget %d", info.CoresetSize, budget)
	}

	// Worker-count invariance of the extraction.
	var baseline Dataset
	for _, workers := range []int{1, 2, 8} {
		restored, err := RestoreStreamingKCenter(merged, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		centers, err := restored.Centers()
		if err != nil {
			t.Fatal(err)
		}
		if len(centers) != k {
			t.Fatalf("workers=%d: extracted %d centers, want %d", workers, len(centers), k)
		}
		if baseline == nil {
			baseline = centers
			continue
		}
		for i := range baseline {
			if !baseline[i].Equal(centers[i]) {
				t.Errorf("workers=%d: center %d differs from workers=1", workers, i)
			}
		}
	}

	// Quality: within (2+eps) of the sequential Gonzalez radius. Gonzalez is
	// itself a 2-approximation, so this holds whenever the sharded pipeline
	// meets its (2+eps)-of-optimum guarantee; eps = 1 absorbs the budget
	// slack.
	seq, err := Gonzalez(ds, k, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	mergedRadius := radiusOf(t, ds, baseline)
	if bound := (2 + 1.0) * seq.Radius; mergedRadius > bound {
		t.Errorf("sharded radius %v exceeds (2+eps) bound %v (Gonzalez %v)", mergedRadius, bound, seq.Radius)
	}

	// And the sharded result should be comparable to a single in-memory
	// stream over the same data with the same budget.
	single, err := NewStreamingKCenter(k, budget)
	if err != nil {
		t.Fatal(err)
	}
	if err := single.ObserveAll(ds); err != nil {
		t.Fatal(err)
	}
	singleCenters, err := single.Centers()
	if err != nil {
		t.Fatal(err)
	}
	singleRadius := radiusOf(t, ds, singleCenters)
	if mergedRadius > 3*singleRadius {
		t.Errorf("sharded radius %v much worse than single-stream radius %v", mergedRadius, singleRadius)
	}
}

func TestSketchOutliersShardedFlow(t *testing.T) {
	const (
		k, z   = 5, 20
		shards = 2
		budget = 8 * (k + z)
	)
	ds := clusteredTestData(4000, 3, 5, 43)
	// Plant z far-away outliers.
	for i := 0; i < z; i++ {
		ds = append(ds, Point{1e5 + float64(i), 1e5, 1e5})
	}

	snaps := make([][]byte, shards)
	for i := 0; i < shards; i++ {
		s, err := NewStreamingOutliers(k, z, budget)
		if err != nil {
			t.Fatal(err)
		}
		for j := i; j < len(ds); j += shards {
			if err := s.Observe(ds[j]); err != nil {
				t.Fatal(err)
			}
		}
		if snaps[i], err = s.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := MergeSketches(snaps...)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStreamingOutliers(merged, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Observed() != int64(len(ds)) {
		t.Errorf("restored stream observed %d, want %d", restored.Observed(), len(ds))
	}
	centers, err := restored.Centers()
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) == 0 || len(centers) > k {
		t.Fatalf("extracted %d centers, want 1..%d", len(centers), k)
	}
	// The planted outliers must not drag the radius: excluding z points, the
	// radius should stay modest relative to the blob spread (well under the
	// 1e5 scale of the planted junk).
	r := radiusExcluding(ds, centers, z)
	if r > 1000 {
		t.Errorf("outlier-aware radius %v: planted outliers were not discarded", r)
	}
}

func TestSnapshotCustomDistanceRejected(t *testing.T) {
	custom := func(a, b Point) float64 { return Euclidean(a, b) }
	s, err := NewStreamingKCenter(3, 12, WithDistance(custom))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(Point{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot(); !errors.Is(err, ErrSketchUnknownDistance) {
		t.Errorf("Snapshot with custom distance = %v, want ErrSketchUnknownDistance", err)
	}
}

func TestRestoreWrongKind(t *testing.T) {
	s, err := NewStreamingKCenter(3, 12)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreStreamingOutliers(snap); !errors.Is(err, ErrSketchIncompatible) {
		t.Errorf("RestoreStreamingOutliers(k-center sketch) = %v, want ErrSketchIncompatible", err)
	}
}

func TestSketchErrorsAreTyped(t *testing.T) {
	if _, err := RestoreStreamingKCenter(nil); !errors.Is(err, ErrSketchTruncated) {
		t.Errorf("restore nil = %v, want ErrSketchTruncated", err)
	}
	if _, err := InspectSketch([]byte("this is not a sketch blob")); !errors.Is(err, ErrSketchBadMagic) {
		t.Errorf("inspect garbage = %v, want ErrSketchBadMagic", err)
	}
	if _, err := MergeSketches([]byte("KCSK")); !errors.Is(err, ErrSketchTruncated) {
		t.Errorf("merge truncated = %v, want ErrSketchTruncated", err)
	}
	if _, err := MergeSketches(); !errors.Is(err, ErrSketchIncompatible) {
		t.Errorf("merge nothing = %v, want ErrSketchIncompatible", err)
	}
}

func TestInspectSketch(t *testing.T) {
	s, err := NewStreamingOutliers(4, 7, 88, WithDistance(Manhattan))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveAll(clusteredTestData(500, 6, 3, 47)); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	info, err := InspectSketch(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Outliers || info.K != 4 || info.Z != 7 || info.Budget != 88 ||
		info.Distance != "manhattan" || info.Observed != 500 || info.Dimensions != 6 {
		t.Errorf("unexpected sketch info: %+v", info)
	}
	if info.CoresetSize < 1 || info.CoresetSize > 88 {
		t.Errorf("coreset size %d outside (0, budget]", info.CoresetSize)
	}
}

// radiusOf is a plain sequential radius computation, independent of the
// library's parallel engine.
func radiusOf(t *testing.T, points, centers Dataset) float64 {
	t.Helper()
	r, err := Radius(points, centers)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// radiusExcluding drops the z largest nearest-center distances.
func radiusExcluding(points, centers Dataset, z int) float64 {
	dists := make([]float64, len(points))
	for i, p := range points {
		best := math.Inf(1)
		for _, c := range centers {
			if d := Euclidean(p, c); d < best {
				best = d
			}
		}
		dists[i] = best
	}
	for i := 0; i < z && len(dists) > 0; i++ {
		maxIdx := 0
		for j, d := range dists {
			if d > dists[maxIdx] {
				maxIdx = j
			}
		}
		dists[maxIdx] = dists[len(dists)-1]
		dists = dists[:len(dists)-1]
	}
	var r float64
	for _, d := range dists {
		if d > r {
			r = d
		}
	}
	return r
}
