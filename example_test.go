package kcenter_test

import (
	"fmt"

	kcenter "coresetclustering"
)

// ExampleCluster demonstrates plain k-center clustering on a small dataset.
func ExampleCluster() {
	points := kcenter.Dataset{
		{0, 0}, {1, 0}, {0, 1},
		{100, 100}, {101, 100}, {100, 101},
	}
	res, err := kcenter.Cluster(points, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", len(res.Centers))
	fmt.Printf("radius: %.2f\n", res.Radius)
	// Output:
	// clusters: 2
	// radius: 1.41
}

// ExampleClusterWithOutliers shows how a single far-away point is absorbed by
// the outlier budget instead of distorting the clustering.
func ExampleClusterWithOutliers() {
	points := kcenter.Dataset{
		{0, 0}, {1, 0}, {0, 1},
		{100, 100}, {101, 100}, {100, 101},
		{100000, 100000}, // a corrupted reading
	}
	res, err := kcenter.ClusterWithOutliers(points, 2, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("radius stays small:", res.Radius < 5)
	fmt.Println("outlier index:", res.Outliers[0])
	// Output:
	// radius stays small: true
	// outlier index: 6
}

// ExampleGonzalez runs the classic sequential 2-approximation.
func ExampleGonzalez() {
	points := kcenter.Dataset{{0}, {1}, {10}, {11}}
	res, err := kcenter.Gonzalez(points, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("radius: %.0f\n", res.Radius)
	// Output:
	// radius: 1
}

// ExampleStreamingKCenter maintains a clustering of a stream under a fixed
// memory budget.
func ExampleStreamingKCenter() {
	s, err := kcenter.NewStreamingKCenter(2, 16)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 1000; i++ {
		_ = s.Observe(kcenter.Point{float64(i % 2 * 100), float64(i % 3)})
	}
	centers, err := s.Centers()
	if err != nil {
		panic(err)
	}
	fmt.Println("centers:", len(centers))
	fmt.Println("memory bounded:", s.WorkingMemory() <= 16)
	// Output:
	// centers: 2
	// memory bounded: true
}
