module coresetclustering

go 1.24
