package kcenter

// Cross-algorithm integration tests: the MapReduce, streaming and sequential
// paths are run on the same workloads and their results compared against each
// other and against the planted cluster structure.

import (
	"math/rand"
	"testing"

	"coresetclustering/internal/dataset"
	"coresetclustering/internal/metric"
)

func plantedWorkload(t *testing.T, name dataset.Name, n, z int, seed int64) (Dataset, []int) {
	t.Helper()
	base, err := dataset.Generate(name, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if z == 0 {
		return base, nil
	}
	inj, err := dataset.InjectOutliers(base, z, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return inj.Points, inj.OutlierIndices
}

func TestIntegrationMapReduceMatchesGonzalez(t *testing.T) {
	for _, name := range dataset.Names() {
		name := name
		t.Run(string(name), func(t *testing.T) {
			points, _ := plantedWorkload(t, name, 2000, 0, 11)
			k := 15
			seq, err := Gonzalez(points, k)
			if err != nil {
				t.Fatal(err)
			}
			mr, err := Cluster(points, k, WithCoresetMultiplier(8))
			if err != nil {
				t.Fatal(err)
			}
			// Gonzalez is a 2-approximation, the MapReduce algorithm 2+eps;
			// empirically their radii should be within a factor ~2 of each
			// other in both directions.
			if mr.Radius > 2.2*seq.Radius {
				t.Errorf("MapReduce radius %v far worse than Gonzalez %v", mr.Radius, seq.Radius)
			}
			if seq.Radius > 2.2*mr.Radius {
				t.Errorf("Gonzalez radius %v far worse than MapReduce %v", seq.Radius, mr.Radius)
			}
		})
	}
}

func TestIntegrationOutlierPathsAgree(t *testing.T) {
	points, outIdx := plantedWorkload(t, dataset.Higgs, 1500, 12, 13)
	k, z := 8, 12

	mrDet, err := ClusterWithOutliers(points, k, z, WithCoresetMultiplier(4))
	if err != nil {
		t.Fatal(err)
	}
	mrRand, err := ClusterWithOutliers(points, k, z, WithCoresetMultiplier(4), WithRandomizedPartitioning(7))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ClusterWithOutliers(points, k, z, WithCoresetMultiplier(4), WithPartitions(1))
	if err != nil {
		t.Fatal(err)
	}
	stream, err := NewStreamingOutliers(k, z, 8*(k+z))
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.ObserveAll(dataset.Shuffle(points, 3)); err != nil {
		t.Fatal(err)
	}
	streamCenters, err := stream.Centers()
	if err != nil {
		t.Fatal(err)
	}
	streamRadius := metric.RadiusExcluding(Euclidean, points, streamCenters, z)

	radii := map[string]float64{
		"mapreduce-deterministic": mrDet.Radius,
		"mapreduce-randomized":    mrRand.Radius,
		"sequential":              seq.Radius,
		"streaming":               streamRadius,
	}
	// The injected outliers sit at 100*r_MEB; a clustering that failed to
	// treat them as outliers would have a radius orders of magnitude larger
	// than one that did. All four paths must land in the "small" regime, and
	// within a moderate factor of each other.
	var minR, maxR float64
	first := true
	for name, r := range radii {
		if r <= 0 {
			t.Errorf("%s returned non-positive radius %v", name, r)
		}
		if first {
			minR, maxR, first = r, r, false
			continue
		}
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	if maxR > 6*minR {
		t.Errorf("outlier-aware radii spread too wide: %v", radii)
	}

	// Every path must identify the planted outliers as the farthest points:
	// check the deterministic MapReduce result explicitly.
	planted := map[int]bool{}
	for _, i := range outIdx {
		planted[i] = true
	}
	for _, oi := range mrDet.Outliers {
		if !planted[oi] {
			t.Errorf("reported outlier %d was not an injected point", oi)
		}
	}
}

func TestIntegrationStreamingMatchesBatch(t *testing.T) {
	points, _ := plantedWorkload(t, dataset.Power, 3000, 0, 17)
	k := 12
	batch, err := Cluster(points, k, WithCoresetMultiplier(8))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStreamingKCenter(k, 16*k)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveAll(dataset.Shuffle(points, 5)); err != nil {
		t.Fatal(err)
	}
	centers, err := s.Centers()
	if err != nil {
		t.Fatal(err)
	}
	streamRadius := metric.Radius(Euclidean, points, centers)
	if streamRadius > 4*batch.Radius {
		t.Errorf("streaming radius %v too far from batch radius %v", streamRadius, batch.Radius)
	}
}

func TestIntegrationDuplicateHeavyInput(t *testing.T) {
	// Failure-injection: an input dominated by duplicates with a few distinct
	// locations must not break any path.
	var points Dataset
	for i := 0; i < 500; i++ {
		points = append(points, Point{1, 1})
	}
	for i := 0; i < 20; i++ {
		points = append(points, Point{float64(i * 10), 0})
	}
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(points), func(i, j int) { points[i], points[j] = points[j], points[i] })

	if _, err := Cluster(points, 5); err != nil {
		t.Errorf("Cluster on duplicate-heavy input: %v", err)
	}
	if _, err := ClusterWithOutliers(points, 5, 3); err != nil {
		t.Errorf("ClusterWithOutliers on duplicate-heavy input: %v", err)
	}
	s, err := NewStreamingKCenter(5, 25)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveAll(points); err != nil {
		t.Errorf("streaming on duplicate-heavy input: %v", err)
	}
	if _, err := s.Centers(); err != nil {
		t.Errorf("streaming centers on duplicate-heavy input: %v", err)
	}
}

func TestIntegrationHighDimensionalWiki(t *testing.T) {
	// The 50-dimensional Wiki-like family is the paper's stress case; make
	// sure the full pipeline handles it end to end.
	points, outIdx := plantedWorkload(t, dataset.Wiki, 800, 8, 23)
	res, err := ClusterWithOutliers(points, 10, 8, WithCoresetMultiplier(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) == 0 {
		t.Fatal("no centers returned")
	}
	// The injected outliers are enormously far away; the outlier-aware radius
	// must not be dominated by them.
	full := metric.Radius(Euclidean, points, res.Centers)
	if res.Radius >= full {
		t.Errorf("outlier-aware radius %v not below full radius %v", res.Radius, full)
	}
	if len(outIdx) != 8 {
		t.Fatalf("expected 8 injected outliers, got %d", len(outIdx))
	}
}
