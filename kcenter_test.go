package kcenter

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"coresetclustering/internal/gmm"
	"coresetclustering/internal/metric"
)

func blobs(rng *rand.Rand, k, perCluster, dim int, separation, spread float64) Dataset {
	var ds Dataset
	for c := 0; c < k; c++ {
		center := make(Point, dim)
		for j := range center {
			center[j] = float64(c) * separation
		}
		for i := 0; i < perCluster; i++ {
			p := make(Point, dim)
			for j := range p {
				p[j] = center[j] + rng.NormFloat64()*spread
			}
			ds = append(ds, p)
		}
	}
	rng.Shuffle(len(ds), func(i, j int) { ds[i], ds[j] = ds[j], ds[i] })
	return ds
}

func withFarOutliers(ds Dataset, n int) Dataset {
	dim := ds.Dim()
	out := ds.Clone()
	for i := 0; i < n; i++ {
		p := make(Point, dim)
		for j := range p {
			p[j] = 1e6 + float64(i)*1e4
		}
		out = append(out, p)
	}
	return out
}

func TestClusterValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := blobs(rng, 2, 20, 2, 100, 1)
	if _, err := Cluster(nil, 2); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := Cluster(Dataset{{1, math.NaN()}}, 1); err == nil {
		t.Error("NaN dataset accepted")
	}
	if _, err := Cluster(ds, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Cluster(ds, 2, WithPrecision(-1)); err == nil {
		t.Error("negative precision accepted")
	}
	if _, err := Cluster(ds, 2, WithCoresetMultiplier(-1)); err == nil {
		t.Error("negative multiplier accepted")
	}
	if _, err := Cluster(ds, 2, WithPartitions(-1)); err == nil {
		t.Error("negative partitions accepted")
	}
}

func TestClusterBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k := 4
	ds := blobs(rng, k, 100, 3, 100, 1)
	res, err := Cluster(ds, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != k {
		t.Fatalf("centers = %d, want %d", len(res.Centers), k)
	}
	if res.Radius > 10 {
		t.Errorf("radius = %v, want small for separated blobs", res.Radius)
	}
	if len(res.Assignment) != len(ds) {
		t.Errorf("assignment length = %d, want %d", len(res.Assignment), len(ds))
	}
	if res.Stats.Partitions <= 0 || res.Stats.CoresetUnionSize <= 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
	// Radius is consistent with the assignment.
	var maxd float64
	for i, p := range ds {
		if d := Euclidean(p, res.Centers[res.Assignment[i]]); d > maxd {
			maxd = d
		}
	}
	if math.Abs(maxd-res.Radius) > 1e-9 {
		t.Errorf("radius %v inconsistent with assignment-derived %v", res.Radius, maxd)
	}
}

func TestClusterKAtLeastN(t *testing.T) {
	ds := Dataset{{1}, {2}, {3}}
	res, err := Cluster(ds, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius != 0 || len(res.Centers) != 3 {
		t.Errorf("degenerate clustering wrong: radius=%v centers=%d", res.Radius, len(res.Centers))
	}
}

func TestClusterOptionsVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := blobs(rng, 3, 60, 2, 80, 1)
	if _, err := Cluster(ds, 3, WithPrecision(0.5), WithParallelism(2)); err != nil {
		t.Errorf("precision rule failed: %v", err)
	}
	if _, err := Cluster(ds, 3, WithPartitions(3), WithCoresetMultiplier(2), WithDistance(Manhattan)); err != nil {
		t.Errorf("explicit partitions failed: %v", err)
	}
}

func TestClusterApproximationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(12)
		k := 1 + rng.Intn(3)
		ds := make(Dataset, n)
		for i := range ds {
			ds[i] = Point{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		}
		res, err := Cluster(ds, k, WithPrecision(0.5))
		if err != nil {
			return false
		}
		opt, err := gmm.BruteForceOptimalRadius(metric.Euclidean, ds, k)
		if err != nil {
			return false
		}
		return res.Radius <= 2.5*opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Errorf("(2+eps) bound violated: %v", err)
	}
}

func TestClusterWithOutliersValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := blobs(rng, 2, 20, 2, 100, 1)
	if _, err := ClusterWithOutliers(nil, 2, 1); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := ClusterWithOutliers(ds, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ClusterWithOutliers(ds, 2, -1); err == nil {
		t.Error("negative z accepted")
	}
	if _, err := ClusterWithOutliers(Dataset{{math.Inf(1)}}, 1, 0); err == nil {
		t.Error("Inf dataset accepted")
	}
}

func TestClusterWithOutliersBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	k, z := 3, 5
	base := blobs(rng, k, 60, 2, 100, 1)
	ds := withFarOutliers(base, z)
	res, err := ClusterWithOutliers(ds, k, z)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) == 0 || len(res.Centers) > k {
		t.Fatalf("centers = %d, want in (0,%d]", len(res.Centers), k)
	}
	if res.Radius > 20 {
		t.Errorf("outlier-aware radius = %v, want small", res.Radius)
	}
	if len(res.Outliers) != z {
		t.Fatalf("outliers = %d, want %d", len(res.Outliers), z)
	}
	// The reported outliers should be exactly the injected far points.
	for _, oi := range res.Outliers {
		if oi < len(base) {
			t.Errorf("reported outlier %d is an original point", oi)
		}
	}
	if len(res.Assignment) != len(ds) {
		t.Errorf("assignment length = %d, want %d", len(res.Assignment), len(ds))
	}
}

func TestClusterWithOutliersRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	k, z := 3, 6
	base := blobs(rng, k, 60, 2, 100, 1)
	ds := withFarOutliers(base, z)
	res, err := ClusterWithOutliers(ds, k, z, WithRandomizedPartitioning(42), WithCoresetMultiplier(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius > 20 {
		t.Errorf("randomized radius = %v, want small", res.Radius)
	}
}

func TestClusterWithOutliersPrecisionRule(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k, z := 2, 3
	base := blobs(rng, k, 30, 2, 80, 1)
	ds := withFarOutliers(base, z)
	res, err := ClusterWithOutliers(ds, k, z, WithPrecision(1.0), WithPartitions(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius > 20 {
		t.Errorf("precision-rule radius = %v, want small", res.Radius)
	}
}

func TestClusterWithOutliersDegenerate(t *testing.T) {
	ds := Dataset{{1}, {2}, {3}}
	res, err := ClusterWithOutliers(ds, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius != 0 {
		t.Errorf("degenerate radius = %v, want 0", res.Radius)
	}
	if len(res.Centers) > 2 {
		t.Errorf("degenerate centers = %d, want <= 2", len(res.Centers))
	}
}

func TestGonzalez(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ds := blobs(rng, 3, 50, 2, 100, 1)
	res, err := Gonzalez(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 {
		t.Fatalf("centers = %d, want 3", len(res.Centers))
	}
	if res.Radius > 10 {
		t.Errorf("radius = %v, want small", res.Radius)
	}
	if _, err := Gonzalez(nil, 1); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := Gonzalez(ds, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Gonzalez(Dataset{{math.NaN()}}, 1); err == nil {
		t.Error("NaN accepted")
	}
}

func TestEstimateDoublingDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := blobs(rng, 2, 100, 3, 50, 1)
	d, err := EstimateDoublingDimension(ds)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0 || d > 10 {
		t.Errorf("doubling dimension estimate = %v out of plausible range", d)
	}
	if _, err := EstimateDoublingDimension(nil); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestStreamingKCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	k := 4
	ds := blobs(rng, k, 150, 3, 100, 1)
	s, err := NewStreamingKCenter(k, 8*k)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveAll(ds); err != nil {
		t.Fatal(err)
	}
	centers, err := s.Centers()
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) != k {
		t.Fatalf("centers = %d, want %d", len(centers), k)
	}
	if r := metric.Radius(Euclidean, ds, centers); r > 20 {
		t.Errorf("streaming radius = %v, want small", r)
	}
	if s.WorkingMemory() > 8*k {
		t.Errorf("working memory %d exceeds budget %d", s.WorkingMemory(), 8*k)
	}
	if s.Observed() != int64(len(ds)) {
		t.Errorf("observed = %d, want %d", s.Observed(), len(ds))
	}
	if err := s.Observe(nil); err == nil {
		t.Error("nil point accepted")
	}
	if _, err := NewStreamingKCenter(0, 5); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewStreamingKCenter(5, 2); err == nil {
		t.Error("budget < k accepted")
	}
}

func TestStreamingOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	k, z := 3, 6
	base := blobs(rng, k, 100, 2, 100, 1)
	ds := withFarOutliers(base, z)
	rng.Shuffle(len(ds), func(i, j int) { ds[i], ds[j] = ds[j], ds[i] })
	s, err := NewStreamingOutliers(k, z, 4*(k+z))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveAll(ds); err != nil {
		t.Fatal(err)
	}
	centers, err := s.Centers()
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) == 0 || len(centers) > k {
		t.Fatalf("centers = %d, want in (0,%d]", len(centers), k)
	}
	if r := metric.RadiusExcluding(Euclidean, ds, centers, z); r > 20 {
		t.Errorf("streaming outlier-aware radius = %v, want small", r)
	}
	if s.WorkingMemory() > 4*(k+z) {
		t.Errorf("working memory %d exceeds budget", s.WorkingMemory())
	}
	if s.Observed() != int64(len(ds)) {
		t.Errorf("observed = %d, want %d", s.Observed(), len(ds))
	}
	if err := s.Observe(nil); err == nil {
		t.Error("nil point accepted")
	}
	if _, err := NewStreamingOutliers(0, 1, 5); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewStreamingOutliers(2, 2, 3); err == nil {
		t.Error("budget < k+z accepted")
	}
}

func TestDefaultEll(t *testing.T) {
	if got := defaultEll(10000, 100); got != 10 {
		t.Errorf("defaultEll(10000,100) = %d, want 10", got)
	}
	if got := defaultEll(5, 100); got != 1 {
		t.Errorf("defaultEll small = %d, want 1", got)
	}
	if got := defaultEll(100, 0); got <= 0 {
		t.Errorf("defaultEll kz=0 = %d, want positive", got)
	}
}

func TestFarthestIndices(t *testing.T) {
	points := Dataset{{0}, {1}, {50}, {100}}
	centers := Dataset{{0}}
	dists, _ := metric.NearestBatch(Euclidean, points, centers, 1)
	got := farthestIndices(dists, 2)
	if len(got) != 2 || got[0] != 3 || got[1] != 2 {
		t.Errorf("farthestIndices = %v, want [3 2]", got)
	}
	if got := farthestIndices(dists, 0); got != nil {
		t.Errorf("z=0 should return nil, got %v", got)
	}
	if got := farthestIndices(dists, 10); len(got) != 4 {
		t.Errorf("z>n should clamp, got %v", got)
	}
	if got := farthestIndices(nil, 1); got != nil {
		t.Errorf("empty distances should return nil, got %v", got)
	}
}
