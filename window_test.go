package kcenter_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	kcenter "coresetclustering"
)

// driftStream emits points near anchor `phase` topics: phase 0 uses anchors
// 0..2, phase 1 uses anchors 3..5, so the stream's recent distribution drifts
// completely between phases.
func driftStream(rng *rand.Rand, n, phase int) kcenter.Dataset {
	out := make(kcenter.Dataset, n)
	for i := range out {
		p := make(kcenter.Point, 6)
		for j := range p {
			p[j] = rng.NormFloat64() * 0.2
		}
		p[3*phase+rng.Intn(3)] += 50
		out[i] = p
	}
	return out
}

func TestWindowedKCenterTracksDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const (
		k      = 3
		budget = 16 * k
		W      = 2000
	)
	windowed, err := kcenter.NewWindowedKCenter(k, budget, kcenter.WithWindowSize(W))
	if err != nil {
		t.Fatal(err)
	}
	insertion, err := kcenter.NewStreamingKCenter(k, budget)
	if err != nil {
		t.Fatal(err)
	}
	phase0 := driftStream(rng, 6000, 0)
	phase1 := driftStream(rng, 6000, 1)
	for _, p := range phase0 {
		if err := windowed.Observe(p); err != nil {
			t.Fatal(err)
		}
		if err := insertion.Observe(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range phase1 {
		if err := windowed.Observe(p); err != nil {
			t.Fatal(err)
		}
		if err := insertion.Observe(p); err != nil {
			t.Fatal(err)
		}
	}
	wCenters, err := windowed.Centers()
	if err != nil {
		t.Fatal(err)
	}
	iCenters, err := insertion.Centers()
	if err != nil {
		t.Fatal(err)
	}
	// Over the recent phase-1 points the windowed summary must be far better:
	// the insertion-only stream's 3 centers still cover the 6 anchors of both
	// phases, the windowed one summarises only the live (phase-1) window.
	recent := phase1[len(phase1)-W:]
	wRadius, err := kcenter.Radius(recent, wCenters)
	if err != nil {
		t.Fatal(err)
	}
	iRadius, err := kcenter.Radius(recent, iCenters)
	if err != nil {
		t.Fatal(err)
	}
	if wRadius*5 > iRadius {
		t.Errorf("windowed radius %v over the recent window is not clearly better than insertion-only %v", wRadius, iRadius)
	}
	if windowed.Observed() != 12000 {
		t.Errorf("observed = %d, want 12000", windowed.Observed())
	}
	if lp := windowed.LivePoints(); lp < W {
		t.Errorf("live points %d below window %d", lp, W)
	}
}

func TestWindowedConstructorsValidate(t *testing.T) {
	if _, err := kcenter.NewWindowedKCenter(3, 30); err == nil {
		t.Error("windowed stream without a window bound accepted")
	}
	if _, err := kcenter.NewWindowedKCenter(3, 30, kcenter.WithWindowSize(-1)); err == nil {
		t.Error("negative window size accepted")
	}
	if _, err := kcenter.NewWindowedKCenter(3, 2, kcenter.WithWindowSize(10)); err == nil {
		t.Error("budget < k accepted")
	}
	if _, err := kcenter.NewWindowedOutliers(3, 4, 5, kcenter.WithWindowSize(10)); err == nil {
		t.Error("budget < k+z accepted")
	}
	// Insertion-only constructors reject window options instead of silently
	// ignoring them.
	if _, err := kcenter.NewStreamingKCenter(3, 30, kcenter.WithWindowSize(10)); err == nil {
		t.Error("NewStreamingKCenter accepted WithWindowSize")
	}
	if _, err := kcenter.NewStreamingOutliers(3, 2, 40, kcenter.WithWindowDuration(10)); err == nil {
		t.Error("NewStreamingOutliers accepted WithWindowDuration")
	}
}

func TestWindowedDurationAdvance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, err := kcenter.NewWindowedOutliers(2, 3, 40, kcenter.WithWindowDuration(100))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p := kcenter.Point{rng.NormFloat64(), rng.NormFloat64()}
		if err := s.ObserveAt(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Centers(); err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveAt(kcenter.Point{0, 0}, 400); !errors.Is(err, kcenter.ErrTimestampOrder) {
		t.Errorf("out-of-order ObserveAt error = %v", err)
	}
	// A long lull expires the whole window.
	if err := s.Advance(1_000_000); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Centers(); !errors.Is(err, kcenter.ErrWindowEmpty) {
		t.Errorf("Centers on empty window = %v, want ErrWindowEmpty", err)
	}
	if s.LivePoints() != 0 || s.LiveBuckets() != 0 {
		t.Errorf("live points/buckets = %d/%d after expiry", s.LivePoints(), s.LiveBuckets())
	}
}

func TestWindowedSnapshotRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, err := kcenter.NewWindowedKCenter(4, 48, kcenter.WithWindowSize(400), kcenter.WithWindowDuration(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		p := kcenter.Point{float64(rng.Intn(4)) * 10, rng.NormFloat64()}
		if err := s.ObserveAt(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	info, err := kcenter.InspectSketch(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Window || info.WindowSize != 400 || info.WindowDuration != 1_000_000 {
		t.Errorf("inspect: %+v", info)
	}
	if info.Observed != 1500 || info.LivePoints < 400 || info.LiveBuckets < 1 {
		t.Errorf("inspect counters: %+v", info)
	}

	restored, err := kcenter.RestoreWindowedKCenter(blob)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := s.Centers()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := restored.Centers()
	if err != nil {
		t.Fatal(err)
	}
	if len(c1) != len(c2) {
		t.Fatalf("center counts differ: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if !c1[i].Equal(c2[i]) {
			t.Fatalf("center %d differs after restore: %v vs %v", i, c1[i], c2[i])
		}
	}
	// Re-snapshot is byte-identical.
	blob2, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Error("snapshot of the restored stream differs from the original")
	}
	// Restoring as the wrong flavour fails with the typed error.
	if _, err := kcenter.RestoreWindowedOutliers(blob); !errors.Is(err, kcenter.ErrSketchIncompatible) {
		t.Errorf("restoring a k-center window sketch as outliers = %v", err)
	}
	// The two sketch families do not cross-decode.
	if _, err := kcenter.RestoreStreamingKCenter(blob); !errors.Is(err, kcenter.ErrSketchBadMagic) {
		t.Errorf("restoring a window sketch as an insertion-only stream = %v", err)
	}
	if _, err := kcenter.MergeSketches(blob, blob); !errors.Is(err, kcenter.ErrSketchIncompatible) {
		t.Errorf("merging window sketches = %v", err)
	}
}

// TestWindowedWorkerInvariance pins the public-API determinism contract:
// windowed centers are bit-identical for every worker count.
func TestWindowedWorkerInvariance(t *testing.T) {
	build := func(workers int) kcenter.Dataset {
		rng := rand.New(rand.NewSource(4))
		s, err := kcenter.NewWindowedKCenter(5, 60, kcenter.WithWindowSize(500), kcenter.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			p := kcenter.Point{float64(rng.Intn(5)) * 20, rng.NormFloat64(), rng.NormFloat64()}
			if err := s.Observe(p); err != nil {
				t.Fatal(err)
			}
		}
		c, err := s.Centers()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	base := build(1)
	for _, workers := range []int{2, 8} {
		got := build(workers)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d centers, want %d", workers, len(got), len(base))
		}
		for i := range got {
			if !got[i].Equal(base[i]) {
				t.Fatalf("workers=%d: center %d differs", workers, i)
			}
		}
	}
}
