package kcenter

import (
	"errors"
	"fmt"

	"coresetclustering/internal/sketch"
	"coresetclustering/internal/streaming"
)

// Sketch errors, re-exported from the codec so callers can branch on them
// with errors.Is. Every malformed input to RestoreStreamingKCenter,
// RestoreStreamingOutliers, MergeSketches or InspectSketch maps to one of
// these; the codec never panics.
var (
	// ErrSketchBadMagic: the bytes are not a sketch at all.
	ErrSketchBadMagic = sketch.ErrBadMagic
	// ErrSketchVersion: the sketch was written by an incompatible codec.
	ErrSketchVersion = sketch.ErrUnsupportedVersion
	// ErrSketchTruncated: the data ends before the declared payload does.
	ErrSketchTruncated = sketch.ErrTruncated
	// ErrSketchCorrupt: a structurally invalid field (non-finite values,
	// weight inconsistencies, budget violations, trailing bytes, ...).
	ErrSketchCorrupt = sketch.ErrCorrupt
	// ErrSketchUnknownDistance: the sketch names a distance this build does
	// not know, or Snapshot was asked to serialize a custom distance.
	ErrSketchUnknownDistance = sketch.ErrUnknownDistance
	// ErrSketchIncompatible: sketches that cannot be merged (different kind,
	// distance, parameters or dimensionality), or a sketch restored as the
	// wrong stream kind.
	ErrSketchIncompatible = sketch.ErrIncompatible
)

// ErrMergeIncompatible marks a MergeSketches failure caused by the sketches
// themselves being unmergeable — window sketches, or mismatched kind,
// distance, parameters or dimensionality — as opposed to bytes that are not
// a valid sketch at all. It always wraps the sketch-level cause, so
// errors.Is against both ErrMergeIncompatible and ErrSketchIncompatible
// holds; a coordinator can branch on it to report "these shards cannot be
// composed" distinctly from "this shard sent garbage".
var ErrMergeIncompatible = errors.New("kcenter: sketches are incompatible for merging")

// mergeIncompatibleError tags an incompatibility cause with
// ErrMergeIncompatible without altering its message: Error() renders the
// cause alone, so existing callers that surface the text see exactly the
// pre-typed wording.
type mergeIncompatibleError struct{ cause error }

func (e *mergeIncompatibleError) Error() string { return e.cause.Error() }

func (e *mergeIncompatibleError) Unwrap() error { return e.cause }

func (e *mergeIncompatibleError) Is(target error) bool { return target == ErrMergeIncompatible }

// Snapshot serializes the complete state of the streaming clusterer into a
// compact, self-describing binary sketch: the doubling-algorithm state
// (budget, lower bound, weighted coreset points), the query parameter k, and
// the identity of the distance function. The sketch can be persisted, shipped
// across machines, restored with RestoreStreamingKCenter, and merged with
// sketches of other shards via MergeSketches; observation may continue after
// the call.
//
// Only the built-in distances (Euclidean, Manhattan, Chebyshev, Angular,
// Cosine) are serializable; a custom WithDistance function yields
// ErrSketchUnknownDistance because the receiving machine could not
// reconstruct it.
func (s *StreamingKCenter) Snapshot() ([]byte, error) {
	id, err := sketch.SpaceID(s.inner.Space())
	if err != nil {
		return nil, fmt.Errorf("kcenter: %w", err)
	}
	return sketch.Encode(sketch.FromState(
		sketch.KindKCenter, id, s.inner.K(), 0, 0, s.inner.Doubling().State()))
}

// RestoreStreamingKCenter reconstructs a streaming clusterer from a sketch
// produced by Snapshot (or MergeSketches). The metric space and all
// parameters come from the sketch itself (sketches are named after their
// space, so decoding resolves the full batched-kernel substrate, not just a
// scalar distance); options may tune the runtime
// behaviour of the restored stream (WithWorkers), while WithDistance is
// ignored. The restored stream is fully live: it can keep observing points,
// answer Centers, and be snapshotted again.
func RestoreStreamingKCenter(data []byte, opts ...Option) (*StreamingKCenter, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	sk, err := sketch.Decode(data)
	if err != nil {
		return nil, err
	}
	if sk.Kind != sketch.KindKCenter {
		return nil, fmt.Errorf("kcenter: %w: sketch is %s, want k-center", ErrSketchIncompatible, sk.Kind)
	}
	sp, err := sk.Space()
	if err != nil {
		return nil, err
	}
	d, err := streaming.RestoreDoublingIn(sp, sk.State())
	if err != nil {
		return nil, fmt.Errorf("kcenter: %w", err)
	}
	inner, err := streaming.RestoreCoresetStream(nil, sk.K, d)
	if err != nil {
		return nil, fmt.Errorf("kcenter: %w", err)
	}
	inner.SetWorkers(o.workers)
	return &StreamingKCenter{inner: inner}, nil
}

// Snapshot serializes the complete state of the streaming outlier clusterer,
// including z and the radius-search slack epsHat, with the same semantics as
// (*StreamingKCenter).Snapshot.
func (s *StreamingOutliers) Snapshot() ([]byte, error) {
	id, err := sketch.SpaceID(s.inner.Space())
	if err != nil {
		return nil, fmt.Errorf("kcenter: %w", err)
	}
	return sketch.Encode(sketch.FromState(
		sketch.KindOutliers, id, s.inner.K(), s.inner.Z(), s.inner.EpsHat(), s.inner.Doubling().State()))
}

// RestoreStreamingOutliers reconstructs a streaming outlier clusterer from a
// sketch produced by (*StreamingOutliers).Snapshot (or MergeSketches over
// such sketches), with the same semantics as RestoreStreamingKCenter.
func RestoreStreamingOutliers(data []byte, opts ...Option) (*StreamingOutliers, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	sk, err := sketch.Decode(data)
	if err != nil {
		return nil, err
	}
	if sk.Kind != sketch.KindOutliers {
		return nil, fmt.Errorf("kcenter: %w: sketch is %s, want k-center-with-outliers", ErrSketchIncompatible, sk.Kind)
	}
	sp, err := sk.Space()
	if err != nil {
		return nil, err
	}
	d, err := streaming.RestoreDoublingIn(sp, sk.State())
	if err != nil {
		return nil, fmt.Errorf("kcenter: %w", err)
	}
	inner, err := streaming.RestoreCoresetOutliers(nil, sk.K, sk.Z, sk.EpsHat, d)
	if err != nil {
		return nil, fmt.Errorf("kcenter: %w", err)
	}
	inner.SetWorkers(o.workers)
	return &StreamingOutliers{inner: inner, z: sk.Z}, nil
}

// MergeSketches unions two or more sketches built on independent shards of a
// stream and re-runs the doubling reduction so the merged sketch is back
// under the shared coreset budget — the paper's composable-coreset property
// as an operation on durable values. All sketches must agree on kind,
// distance, k, z, epsHat, budget and dimensionality (ErrSketchIncompatible
// otherwise).
//
// Determinism: the merge is fully sequential and independent of worker
// counts; its result is fixed by the argument order, and merging the same
// sketches twice yields byte-identical output. The merged sketch accounts for
// every original point exactly once (its weights sum to the total number of
// points observed across the shards).
func MergeSketches(sketches ...[]byte) ([]byte, error) {
	decoded := make([]*sketch.Sketch, len(sketches))
	for i, data := range sketches {
		if sketch.IsWindowSketch(data) {
			// Window sketches summarise different time ranges of different
			// streams; unioning their buckets has no coherent window
			// semantics, so the merge is refused rather than silently wrong.
			return nil, &mergeIncompatibleError{
				fmt.Errorf("sketch %d: %w: window sketches cannot be merged", i, ErrSketchIncompatible)}
		}
		s, err := sketch.Decode(data)
		if err != nil {
			return nil, typedMergeError(fmt.Errorf("sketch %d: %w", i, err))
		}
		decoded[i] = s
	}
	merged, err := sketch.Merge(decoded...)
	if err != nil {
		return nil, typedMergeError(err)
	}
	return sketch.Encode(merged)
}

// typedMergeError tags incompatibility failures with ErrMergeIncompatible
// and passes every other failure (corrupt bytes, truncation, ...) through
// untouched.
func typedMergeError(err error) error {
	if errors.Is(err, ErrSketchIncompatible) {
		return &mergeIncompatibleError{err}
	}
	return err
}

// SketchInfo summarises a sketch without restoring it.
type SketchInfo struct {
	// Outliers reports whether this is an outlier-aware sketch.
	Outliers bool
	// K is the number of centers extracted at query time.
	K int
	// Z is the number of outliers tolerated (0 unless Outliers).
	Z int
	// Budget is the coreset budget (tau) of the doubling algorithm.
	Budget int
	// Distance is the registered name of the distance function.
	Distance string
	// Observed is the number of stream points the sketch summarises.
	Observed int64
	// CoresetSize is the number of weighted points currently retained.
	CoresetSize int
	// Dimensions is the dimensionality of the points (0 if the sketch is
	// empty).
	Dimensions int
	// Window reports whether this is a sliding-window sketch (magic KCWN);
	// the remaining fields apply only when it is.
	Window bool
	// WindowSize is the count bound of a window sketch (0 = none).
	WindowSize int64
	// WindowDuration is the duration bound of a window sketch (0 = none).
	WindowDuration int64
	// LiveBuckets is the number of live buckets of a window sketch.
	LiveBuckets int
	// LivePoints is the number of stream points the live buckets summarise
	// (Observed counts the stream's whole lifetime, evicted points included).
	LivePoints int64
}

// InspectSketch decodes and validates a sketch — insertion-only (KCSK) or
// sliding-window (KCWN) — and reports its metadata. It is the cheap way to
// answer "what is this blob?" before deciding to restore or merge it.
func InspectSketch(data []byte) (*SketchInfo, error) {
	if sketch.IsWindowSketch(data) {
		ws, err := sketch.DecodeWindow(data)
		if err != nil {
			return nil, err
		}
		info := &SketchInfo{
			Outliers:       ws.Kind == sketch.KindOutliers,
			K:              ws.K,
			Z:              ws.Z,
			Budget:         ws.Tau,
			Distance:       sketch.DistanceName(ws.DistID),
			Observed:       ws.Seq,
			Window:         true,
			WindowSize:     ws.MaxCount,
			WindowDuration: ws.MaxAge,
			LiveBuckets:    len(ws.Buckets),
		}
		for _, b := range ws.Buckets {
			info.CoresetSize += len(b.Payload.Points)
			info.LivePoints += b.EndSeq - b.StartSeq
			if info.Dimensions == 0 {
				info.Dimensions = b.Payload.Dim()
			}
		}
		return info, nil
	}
	sk, err := sketch.Decode(data)
	if err != nil {
		return nil, err
	}
	return &SketchInfo{
		Outliers:    sk.Kind == sketch.KindOutliers,
		K:           sk.K,
		Z:           sk.Z,
		Budget:      sk.Tau,
		Distance:    sketch.DistanceName(sk.DistID),
		Observed:    sk.Processed,
		CoresetSize: len(sk.Points),
		Dimensions:  sk.Dim(),
	}, nil
}
